"""Tests for the runtime message sanitizer (``sanitize=True``)."""

import threading
import warnings

import pytest

from repro.mpi.cluster import SimCluster
from repro.mpi.simcomm import MessageLeakError, PayloadMutationError
from repro.mpi.timing import CommCostModel

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def cluster(n, **kw):
    kw.setdefault("cost_model", FAST)
    kw.setdefault("deadlock_timeout", 20.0)
    return SimCluster(n, **kw)


class TestPayloadMutation:
    def test_mutate_after_send_raises(self):
        """The canonical MPI003 race, caught at runtime."""
        mutated = threading.Event()

        def fn(comm):
            if comm.rank == 0:
                payload = [1, 2, 3]
                comm.send(payload, dest=1)
                payload.append(4)  # noqa: MPI003 - deliberate race under test
                mutated.set()
                return None
            assert mutated.wait(timeout=10.0)
            return comm.recv(source=0)

        with pytest.raises(RuntimeError) as exc_info:
            cluster(2, sanitize=True).run(fn)
        assert isinstance(exc_info.value.__cause__, PayloadMutationError)

    def test_clean_exchange_passes(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"k": [1, 2]}, dest=1)
                return None
            return comm.recv(source=0)

        results, _ = cluster(2, sanitize=True).run(fn)
        assert results[1] == {"k": [1, 2]}

    def test_collectives_pass_under_sanitizer(self):
        def fn(comm):
            data = comm.bcast(list(range(8)), root=0)
            total = comm.allreduce(comm.rank)
            parts = comm.allgather(data[comm.rank % len(data)])
            return (data, total, parts)

        size = 5
        results, _ = cluster(size, sanitize=True).run(fn)
        for data, total, parts in results:
            assert data == list(range(8))
            assert total == sum(range(size))
            assert parts == [r % 8 for r in range(size)]

    def test_unpicklable_payload_skips_fingerprint(self):
        """No digest can be taken, so the sanitizer must not crash."""

        def fn(comm):
            if comm.rank == 0:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    comm.send(threading.Lock(), dest=1)
                return None
            received = comm.recv(source=0)
            return type(received).__name__

        results, _ = cluster(2, sanitize=True).run(fn)
        assert "lock" in results[1].lower()

    def test_mutation_not_detected_without_sanitize(self):
        """Default mode keeps the old permissive behavior."""
        mutated = threading.Event()

        def fn(comm):
            if comm.rank == 0:
                payload = [1]
                comm.send(payload, dest=1)
                payload.append(2)  # noqa: MPI003 - deliberate race under test
                mutated.set()
                return None
            assert mutated.wait(timeout=10.0)
            return comm.recv(source=0)

        results, _ = cluster(2).run(fn)
        assert results[1] == [1, 2]  # receiver observes the race silently


class TestMessageLeak:
    def test_unconsumed_message_raises_at_shutdown(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("orphan", dest=1, tag=7)  # noqa: MPI004 - deliberate leak fixture

        with pytest.raises(MessageLeakError, match=r"0->1 tag 7"):
            cluster(2, sanitize=True).run(fn)

    def test_unconsumed_message_ignored_without_sanitize(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("orphan", dest=1, tag=7)  # noqa: MPI004 - deliberate leak fixture

        cluster(2).run(fn)  # no error: leak detection is opt-in

    def test_rank_error_takes_precedence_over_leak(self):
        """A failing rank reports its own error, not the leak it caused."""

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)  # noqa: MPI004 - deliberate leak fixture
                raise ValueError("boom")
            comm.advance(0.0)  # rank 1 exits without receiving

        with pytest.raises(RuntimeError, match="boom"):
            cluster(2, sanitize=True).run(fn)
