"""Integration tests for the simulated MPI runtime."""

import numpy as np
import pytest

from repro.mpi.cluster import SimCluster
from repro.mpi.simcomm import DeadlockError
from repro.mpi.timing import CommCostModel

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def cluster(n, **kw):
    kw.setdefault("cost_model", FAST)
    kw.setdefault("deadlock_timeout", 5.0)
    return SimCluster(n, **kw)


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 42}, dest=1)
                return None
            return comm.recv(source=0)

        results, _ = cluster(2).run(fn)
        assert results[1] == {"x": 42}

    def test_numpy_payload(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(100), dest=1)
                return None
            return comm.recv(source=0)

        results, _ = cluster(2).run(fn)
        assert (results[1] == np.arange(100)).all()

    def test_tags_separate_streams(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        results, _ = cluster(2).run(fn)
        assert results[1] == ("a", "b")

    def test_fifo_per_channel(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        results, _ = cluster(2).run(fn)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_self_send_rejected(self):
        def fn(comm):
            comm.send(1, dest=comm.rank)  # noqa: MPI004 - deliberate self-send fixture

        with pytest.raises(RuntimeError, match="rank 0 failed"):
            cluster(1).run(fn)

    def test_deadlock_detected(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # noqa: MPI004 - deliberate deadlock fixture

        with pytest.raises(RuntimeError, match="failed"):
            cluster(2, deadlock_timeout=0.2).run(fn)


class TestVirtualClock:
    def test_advance_and_compute_time(self):
        def fn(comm):
            comm.advance(1.5)
            return comm.clock

        results, stats = cluster(2).run(fn)
        assert results == [1.5, 1.5]
        assert stats.compute_times == [1.5, 1.5]
        assert stats.elapsed == 1.5

    def test_recv_waits_for_sender_clock(self):
        def fn(comm):
            if comm.rank == 0:
                comm.advance(2.0)
                comm.send("late", dest=1)
                return comm.clock
            comm.recv(source=0)
            return comm.clock

        results, _ = cluster(2).run(fn)
        # Receiver clock must jump past the sender's 2.0s of compute.
        assert results[1] >= 2.0

    def test_message_cost_added(self):
        model = CommCostModel(alpha=1.0, beta=0.0)

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return comm.clock
            comm.recv(source=0)
            return comm.clock

        results, _ = cluster(2, cost_model=model).run(fn)
        assert results[1] == pytest.approx(1.0)  # one alpha of latency

    def test_timed_context(self):
        def fn(comm):
            with comm.timed():
                sum(range(10000))
            return comm.clock

        results, _ = cluster(1).run(fn)
        assert results[0] > 0

    def test_negative_advance_rejected(self):
        def fn(comm):
            comm.advance(-1)

        with pytest.raises(RuntimeError):
            cluster(1).run(fn)

    def test_stats_bytes(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000, dtype=np.uint8), dest=1)
            else:
                comm.recv(source=0)

        _, stats = cluster(2).run(fn)
        assert stats.bytes_sent[0] >= 1000
        assert stats.messages_sent[0] == 1


class TestCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
    def test_bcast(self, size):
        def fn(comm):
            data = {"v": 7} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        results, _ = cluster(size).run(fn)
        assert all(r == {"v": 7} for r in results)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        def fn(comm):
            data = "hello" if comm.rank == root else None
            return comm.bcast(data, root=root)

        results, _ = cluster(3).run(fn)
        assert results == ["hello"] * 3

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_gather(self, size):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=0)

        results, _ = cluster(size).run(fn)
        assert results[0] == [r * 10 for r in range(size)]
        assert all(r is None for r in results[1:])

    def test_gather_nonzero_root(self):
        def fn(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=2)

        results, _ = cluster(4).run(fn)
        assert results[2] == ["a", "b", "c", "d"]

    @pytest.mark.parametrize("size", [1, 2, 4, 6])
    def test_scatter(self, size):
        def fn(comm):
            objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        results, _ = cluster(size).run(fn)
        assert results == [f"item{i}" for i in range(size)]

    def test_scatter_wrong_count(self):
        def fn(comm):
            return comm.scatter([1], root=0)

        with pytest.raises(RuntimeError):
            cluster(2).run(fn)

    @pytest.mark.parametrize("size", [1, 3, 4, 8])
    def test_allgather(self, size):
        def fn(comm):
            return comm.allgather(comm.rank)

        results, _ = cluster(size).run(fn)
        assert all(r == list(range(size)) for r in results)

    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_reduce_sum(self, size):
        def fn(comm):
            return comm.reduce(comm.rank + 1, root=0)

        results, _ = cluster(size).run(fn)
        assert results[0] == size * (size + 1) // 2

    def test_reduce_custom_op(self):
        def fn(comm):
            return comm.reduce(comm.rank, op=max, root=0)

        results, _ = cluster(6).run(fn)
        assert results[0] == 5

    def test_reduce_binomial_order_nonzero_root(self):
        """Pins the documented op order: a left fold over *vrank* order.

        String concatenation is associative but not commutative, so the
        result exposes the operand order: with root=1 on 3 ranks the
        vrank order is (1, 2, 0), not rank order (0, 1, 2).
        """

        def fn(comm):
            return comm.reduce(str(comm.rank), op=lambda a, b: a + b, root=1)

        results, _ = cluster(3).run(fn)
        assert results[1] == "120"  # NOT "012": vrank order starts at the root

    def test_reduce_binomial_order_nonassociative_op(self):
        """Pins the tree grouping for a non-associative op (subtraction).

        On 4 ranks the binomial tree computes (0-1) - (2-3) = 0, which
        differs from the sequential left fold ((0-1)-2)-3 = -6 — the
        same contract as MPI_Reduce with a non-associative op.
        """

        def fn(comm):
            return comm.reduce(comm.rank, op=lambda a, b: a - b, root=0)

        results, _ = cluster(4).run(fn)
        assert results[0] == 0
        assert results[0] != ((0 - 1) - 2) - 3

    @pytest.mark.parametrize("size", [1, 2, 4, 7])
    def test_allreduce(self, size):
        def fn(comm):
            return comm.allreduce(1)

        results, _ = cluster(size).run(fn)
        assert results == [size] * size

    def test_barrier_synchronises_clocks(self):
        def fn(comm):
            comm.advance(float(comm.rank))  # rank r computes r seconds
            comm.barrier()
            return comm.clock

        results, _ = cluster(4).run(fn)
        assert all(c >= 3.0 for c in results)

    def test_collective_cost_scales_logarithmically(self):
        model = CommCostModel(alpha=1.0, beta=0.0)

        def fn(comm):
            comm.bcast("x", root=0)
            return comm.clock

        _, stats8 = cluster(8, cost_model=model).run(fn)
        # Binomial tree: depth 3 for 8 ranks -> last receiver ~3 alphas,
        # far less than the 7 alphas of a flat root-sends-all.
        assert stats8.elapsed <= 4.0


class TestCluster:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimCluster(0)

    def test_results_ordered_by_rank(self):
        def fn(comm):
            return comm.rank

        results, _ = cluster(5).run(fn)
        assert results == [0, 1, 2, 3, 4]

    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return 1

        with pytest.raises(RuntimeError, match="rank 2 failed"):
            cluster(3).run(fn)

    def test_kwargs_passed(self):
        def fn(comm, base, scale=1):
            return base + comm.rank * scale

        results, _ = cluster(3).run(fn, 10, scale=2)
        assert results == [10, 12, 14]


class TestErrorContext:
    """Timeout/fault errors must carry enough context to debug a hang.

    Regression guard for the diagnosable DeadlockError format: the
    message names the waiting rank, the peer, the tag, the timeout,
    and the virtual time at which the wait gave up.
    """

    def test_timeout_message_names_rank_peer_tag_and_time(self):
        def fn(comm):
            if comm.rank == 1:
                comm.advance(1.5)
                comm.recv(source=0, tag=7)  # noqa: MPI004 - deliberate deadlock fixture

        with pytest.raises(RuntimeError, match="rank 1 failed") as ei:
            cluster(2, deadlock_timeout=0.2).run(fn)
        message = str(ei.value)
        assert "timed out receiving from rank 0" in message
        assert "tag 7" in message
        assert "after 0.2s" in message
        assert "virtual time 1.5" in message
