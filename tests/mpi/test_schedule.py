"""Unit tests for the task-schedule replay (Fig. 4 machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi.schedule import lpt_makespan, partition_schedule_makespan, speedup_curve
from repro.partition.recursive import TaskRecord


class TestLptMakespan:
    def test_single_processor_sums(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_processors(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 3) == 3.0

    def test_two_processors(self):
        # LPT: 3 -> p1, 2 -> p2, 1 -> p2 => makespan 3
        assert lpt_makespan([1.0, 2.0, 3.0], 2) == 3.0

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)
        with pytest.raises(ValueError):
            lpt_makespan([-1.0], 1)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30),
        st.integers(min_value=1, max_value=16),
    )
    def test_bounds_property(self, durations, p):
        ms = lpt_makespan(durations, p)
        total = sum(durations)
        longest = max(durations) if durations else 0.0
        assert ms >= max(longest, total / p) - 1e-9
        assert ms <= total + 1e-9

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    def test_monotone_in_processors(self, durations, p):
        assert lpt_makespan(durations, p + 1) <= lpt_makespan(durations, p) + 1e-9


def make_tasks():
    # 3 bisection steps (1, 2, 4 tasks) + 4 kway levels
    tasks = [TaskRecord("bisect", 0, 4.0)]
    tasks += [TaskRecord("bisect", 1, 2.0)] * 2
    tasks += [TaskRecord("bisect", 2, 1.0)] * 4
    tasks += [TaskRecord("kway", lvl, 0.5) for lvl in range(4)]
    return tasks


class TestPartitionSchedule:
    def test_serial_time_is_sum(self):
        tasks = make_tasks()
        assert partition_schedule_makespan(tasks, 1) == pytest.approx(4 + 4 + 4 + 2)

    def test_steps_are_barriers(self):
        tasks = make_tasks()
        # p=4: step0=4, step1=2, step2=1, kway=0.5
        assert partition_schedule_makespan(tasks, 4) == pytest.approx(4 + 2 + 1 + 0.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            partition_schedule_makespan([TaskRecord("mystery", 0, 1.0)], 2)

    def test_speedup_curve_shape(self):
        tasks = make_tasks()
        curve = speedup_curve(tasks, [1, 2, 4, 8])
        assert curve[0] == (1, pytest.approx(1.0))
        speeds = [s for _, s in curve]
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))
        # Saturation: the serial step-0 task bounds speedup at 14/7.5.
        assert speeds[-1] == pytest.approx(14 / 7.5)

    def test_saturation_mirrors_paper(self):
        # For k=16 parts the paper saturates around 2^(log2 k - 1) = 8 procs.
        tasks = [TaskRecord("bisect", 0, 8.0)]
        tasks += [TaskRecord("bisect", 1, 4.0)] * 2
        tasks += [TaskRecord("bisect", 2, 2.0)] * 4
        tasks += [TaskRecord("bisect", 3, 1.0)] * 8
        curve = dict(speedup_curve(tasks, [1, 2, 4, 8, 16]))
        assert curve[16] == pytest.approx(curve[8])  # no gain past 8
        assert curve[8] > curve[4] > curve[2] > curve[1]
