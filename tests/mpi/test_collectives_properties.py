"""Hypothesis property tests for the collectives.

For random communicator sizes, roots, and payloads, every collective
must deliver mpi4py-equivalent *values* and keep every rank's virtual
clock *monotone* (a collective can only move clocks forward).
"""

from hypothesis import given, settings, strategies as st

from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel

FAST = CommCostModel(alpha=1e-6, beta=1e-9)

sizes = st.integers(min_value=1, max_value=6)
payloads = st.one_of(
    st.integers(-(10**6), 10**6),
    st.text(max_size=8),
    st.lists(st.integers(0, 255), max_size=6),
)
seeds = st.integers(0, 2**31 - 1)

COMMON = dict(max_examples=25, deadline=None)


def run_collective(size, fn):
    """Run ``fn(comm)`` on ``size`` ranks; returns (results, clock deltas ok)."""
    monotone = [None] * size

    def wrapper(comm):
        before = comm.clock
        out = fn(comm)
        monotone[comm.rank] = comm.clock >= before
        return out

    results, stats = SimCluster(size, cost_model=FAST, deadlock_timeout=30.0).run(wrapper)
    assert all(monotone), "a collective moved a rank's clock backwards"
    assert all(c >= 0.0 for c in stats.clocks)
    return results


@settings(**COMMON)
@given(data=st.data(), size=sizes, obj=payloads)
def test_bcast_delivers_root_object(data, size, obj):
    root = data.draw(st.integers(0, size - 1))
    results = run_collective(size, lambda comm: comm.bcast(obj, root=root))
    assert results == [obj] * size


@settings(**COMMON)
@given(data=st.data(), size=sizes)
def test_gather_orders_by_rank(data, size):
    root = data.draw(st.integers(0, size - 1))
    results = run_collective(size, lambda comm: comm.gather(("r", comm.rank), root=root))
    for rank, res in enumerate(results):
        if rank == root:
            assert res == [("r", r) for r in range(size)]
        else:
            assert res is None


@settings(**COMMON)
@given(data=st.data(), size=sizes, items=st.data())
def test_scatter_routes_item_i_to_rank_i(data, size, items):
    root = data.draw(st.integers(0, size - 1))
    objs = items.draw(st.lists(payloads, min_size=size, max_size=size))

    def fn(comm):
        return comm.scatter(objs if comm.rank == root else None, root=root)

    assert run_collective(size, fn) == objs


@settings(**COMMON)
@given(size=sizes)
def test_allgather_same_full_list_everywhere(size):
    results = run_collective(size, lambda comm: comm.allgather(comm.rank * 11))
    assert results == [[r * 11 for r in range(size)]] * size


@settings(**COMMON)
@given(data=st.data(), size=sizes, seed=seeds)
def test_reduce_sum_matches_python_sum(data, size, seed):
    root = data.draw(st.integers(0, size - 1))
    values = [(seed + 37 * r) % 1009 for r in range(size)]
    results = run_collective(
        size, lambda comm: comm.reduce(values[comm.rank], root=root)
    )
    assert results[root] == sum(values)
    assert all(res is None for r, res in enumerate(results) if r != root)


@settings(**COMMON)
@given(size=sizes, seed=seeds)
def test_allreduce_max_everywhere(size, seed):
    values = [(seed + 101 * r) % 4093 for r in range(size)]
    results = run_collective(
        size, lambda comm: comm.allreduce(values[comm.rank], op=max)
    )
    assert results == [max(values)] * size


@settings(**COMMON)
@given(size=sizes)
def test_alltoall_is_a_transpose(size):
    def fn(comm):
        return comm.alltoall([(comm.rank, dst) for dst in range(size)])

    results = run_collective(size, fn)
    for dst in range(size):
        assert results[dst] == [(src, dst) for src in range(size)]


@settings(**COMMON)
@given(size=sizes, seed=seeds)
def test_barrier_aligns_clocks_to_group_max(size, seed):
    delays = [((seed + r) % 7) / 10.0 for r in range(size)]

    def fn(comm):
        comm.advance(delays[comm.rank])
        comm.barrier()
        return comm.clock

    results = run_collective(size, fn)
    slowest = max(delays)
    assert all(c >= slowest for c in results)
