"""Unit tests for the communication cost model."""

import threading
import warnings

import numpy as np
import pytest

from repro.mpi import timing
from repro.mpi.timing import CommCostModel, payload_nbytes


class TestPayloadNbytes:
    def test_ndarray_fast_path(self):
        a = np.zeros(1000, dtype=np.float64)
        assert payload_nbytes(a) == 8000 + 96

    def test_generic_object(self):
        n = payload_nbytes({"a": 1, "b": [1, 2, 3]})
        assert n > 10

    def test_larger_object_larger_size(self):
        assert payload_nbytes(list(range(1000))) > payload_nbytes([1])

    @pytest.mark.parametrize(
        "buf", [b"x" * 4096, bytearray(b"y" * 4096), memoryview(b"z" * 4096)]
    )
    def test_byte_buffer_fast_path(self, buf):
        assert payload_nbytes(buf) == 4096 + timing._BYTES_OVERHEAD

    def test_memoryview_of_ndarray_uses_nbytes(self):
        mv = memoryview(np.zeros(100, dtype=np.int32))
        assert payload_nbytes(mv) == 400 + timing._BYTES_OVERHEAD

    def test_empty_buffer(self):
        assert payload_nbytes(b"") == timing._BYTES_OVERHEAD

    def test_unpicklable_warns_once_then_is_silent(self, monkeypatch):
        monkeypatch.setattr(timing, "_warned_unpicklable", False)
        lock = threading.Lock()  # locks cannot be pickled
        with pytest.warns(RuntimeWarning, match="unpicklable"):
            assert payload_nbytes(lock) == timing._UNPICKLABLE_FALLBACK
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert payload_nbytes(lock) == timing._UNPICKLABLE_FALLBACK


class TestCommCostModel:
    def test_message_cost(self):
        m = CommCostModel(alpha=1e-5, beta=1e-9)
        assert m.message_cost(0) == pytest.approx(1e-5)
        assert m.message_cost(10**9) == pytest.approx(1e-5 + 1.0)

    def test_cost_of_object(self):
        m = CommCostModel(alpha=0.0, beta=1.0)
        a = np.zeros(10, dtype=np.uint8)
        assert m.cost_of(a) == pytest.approx(10 + 96)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CommCostModel(alpha=-1)
        with pytest.raises(ValueError):
            CommCostModel().message_cost(-5)
