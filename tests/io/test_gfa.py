"""Tests for GFA 1.0 export."""

import io

import numpy as np

from repro.io.gfa import gfa_string, write_gfa
from repro.sequence.dna import decode
from tests.distributed.conftest import chain_assembly, dag_of


def parse_gfa(text):
    segments, links = {}, []
    for line in text.strip().splitlines():
        fields = line.split("\t")
        if fields[0] == "S":
            segments[fields[1]] = fields[2]
        elif fields[0] == "L":
            links.append((fields[1], fields[2], fields[3], fields[4], fields[5]))
    return segments, links


class TestGfaExport:
    def test_header_present(self):
        asm, _ = chain_assembly(n=3)
        assert gfa_string(asm).startswith("H\tVN:Z:1.0\n")

    def test_segments_carry_sequences(self):
        asm, _ = chain_assembly(n=3)
        segments, _ = parse_gfa(gfa_string(asm))
        assert len(segments) == 3
        assert segments["contig0"] == decode(asm.contigs[0])

    def test_links_with_overlap_cigars(self):
        asm, _ = chain_assembly(n=3)  # 120bp contigs, 60bp steps
        _, links = parse_gfa(gfa_string(asm))
        assert len(links) == 2
        for src, s1, dst, s2, cigar in links:
            assert (s1, s2) == ("+", "+")
            assert cigar == "60M"

    def test_link_direction_follows_delta(self):
        asm, _ = chain_assembly(n=2)
        _, links = parse_gfa(gfa_string(asm))
        assert links[0][0] == "contig0" and links[0][2] == "contig1"

    def test_sequences_omittable(self):
        asm, _ = chain_assembly(n=2)
        segments, _ = parse_gfa(gfa_string(asm, include_sequences=False))
        assert all(seq == "*" for seq in segments.values())

    def test_dag_export_respects_alive_masks(self):
        asm, _ = chain_assembly(n=4)
        dag = dag_of(asm, [0] * 4)
        dag.remove_nodes([1])
        segments, links = parse_gfa(gfa_string(dag))
        assert set(segments) == {"contig0", "contig2", "contig3"}
        assert len(links) == 1  # only 2-3 survives

    def test_write_to_path_and_stream(self, tmp_path):
        asm, _ = chain_assembly(n=2)
        path = tmp_path / "graph.gfa"
        write_gfa(asm, path)
        buf = io.StringIO()
        write_gfa(asm, buf)
        assert path.read_text() == buf.getvalue()

    def test_ln_tags(self):
        asm, _ = chain_assembly(n=2)
        text = gfa_string(asm)
        assert "LN:i:120" in text
