"""Unit tests for the Read record."""

import numpy as np
import pytest

from repro.io.records import Read
from repro.sequence.dna import encode


class TestRead:
    def test_from_string(self):
        r = Read.from_string("r1", "ACGT")
        assert r.sequence == "ACGT"
        assert len(r) == 4

    def test_quality_length_check(self):
        with pytest.raises(ValueError, match="quality scores"):
            Read("r1", encode("ACGT"), quals=np.array([40, 40]))

    def test_meta_independent(self):
        r = Read.from_string("r1", "ACGT", meta={"genus": "Bacteroides"})
        assert r.meta["genus"] == "Bacteroides"

    def test_reverse_complement(self):
        r = Read.from_string("r1", "AACG", quals=np.array([10, 20, 30, 40]))
        rc = r.reverse_complement()
        assert rc.sequence == "CGTT"
        assert rc.quals.tolist() == [40, 30, 20, 10]
        assert rc.id == "r1/rc"
        assert rc.meta["rc_of"] == "r1"

    def test_reverse_complement_no_quals(self):
        rc = Read.from_string("r1", "AACG").reverse_complement()
        assert rc.quals is None

    def test_codes_coerced_uint8(self):
        r = Read("r1", [0, 1, 2, 3])
        assert r.codes.dtype == np.uint8
