"""Tests for npz persistence of graphs and read sets."""

import numpy as np
import pytest

from repro.graph.overlap_graph import OverlapGraph
from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.io.store import load_graph, load_readset, save_graph, save_readset


def sample_graph():
    return OverlapGraph(
        4,
        np.array([0, 1, 2]),
        np.array([1, 2, 3]),
        np.array([10.0, 20.0, 30.0]),
        node_weights=np.array([1, 2, 1, 3]),
        deltas=np.array([40, -15, 7]),
        identities=np.array([0.9, 0.95, 1.0]),
    )


class TestGraphStore:
    def test_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.n_nodes == g.n_nodes
        assert (g2.eu == g.eu).all() and (g2.ev == g.ev).all()
        assert (g2.weights == g.weights).all()
        assert (g2.deltas == g.deltas).all()
        assert (g2.identities == g.identities).all()
        assert (g2.node_weights == g.node_weights).all()
        assert g2.has_deltas

    def test_roundtrip_without_deltas(self, tmp_path):
        g = OverlapGraph(2, np.array([0]), np.array([1]), np.array([1.0]))
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert not g2.has_deltas

    def test_csr_rebuilt(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.neighbors(1).tolist() == g.neighbors(1).tolist()

    def test_empty_graph(self, tmp_path):
        g = OverlapGraph(3, np.array([]), np.array([]), np.array([]))
        path = tmp_path / "g.npz"
        save_graph(g, path)
        assert load_graph(path).n_edges == 0


class TestReadSetStore:
    def test_roundtrip_with_quals_and_meta(self, tmp_path):
        reads = ReadSet(
            [
                Read.from_string("a", "ACGT", quals=np.array([10, 20, 30, 40]),
                                 meta={"genus": "Prevotella", "position": 5}),
                Read.from_string("b", "TT", quals=np.array([2, 2])),
            ]
        )
        path = tmp_path / "r.npz"
        save_readset(reads, path)
        back = load_readset(path)
        assert back.ids == ["a", "b"]
        assert back.sequence_of(0) == "ACGT"
        assert back.quals_of(0).tolist() == [10, 20, 30, 40]
        assert back.meta[0]["genus"] == "Prevotella"
        assert back.meta[0]["position"] == 5

    def test_roundtrip_without_quals(self, tmp_path):
        reads = ReadSet.from_strings(["ACG", "TTTT"])
        path = tmp_path / "r.npz"
        save_readset(reads, path)
        back = load_readset(path)
        assert back.quals is None
        assert [back.sequence_of(i) for i in range(2)] == ["ACG", "TTTT"]

    def test_empty_readset(self, tmp_path):
        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings([]), path)
        assert len(load_readset(path)) == 0

    def test_cross_loader_rejected_with_clear_error(self, tmp_path):
        # A readset archive fed to load_graph must not surface a bare
        # KeyError from numpy's lazy dict access.
        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings(["ACGT"]), path)
        with pytest.raises(ValueError, match="missing keys"):
            load_graph(path)

    def test_pipeline_checkpoint(self, tmp_path):
        # align once, save, reload, partition: same edge cut
        from repro.align.overlapper import OverlapConfig, OverlapDetector
        from tests.graph.conftest import tiled_readset

        reads, _ = tiled_readset(genome_len=600)
        overlaps = OverlapDetector(OverlapConfig(min_overlap=50)).find_overlaps(reads)
        g = OverlapGraph.from_overlaps(overlaps, len(reads))
        gp, rp = tmp_path / "g.npz", tmp_path / "r.npz"
        save_graph(g, gp)
        save_readset(reads, rp)
        g2, r2 = load_graph(gp), load_readset(rp)
        assert g2.n_edges == g.n_edges
        assert r2.total_bases == reads.total_bases


class TestCorruptedArchives:
    """Loaders must fail with ValueError, never a bare KeyError."""

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="not a graph archive"):
            load_graph(path)
        with pytest.raises(ValueError, match="not a readset archive"):
            load_readset(path)

    def test_graph_archive_missing_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1), n_nodes=np.int64(2))
        with pytest.raises(ValueError, match="missing keys"):
            load_graph(path)

    def test_readset_archive_missing_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1))
        with pytest.raises(ValueError, match="missing keys"):
            load_readset(path)

    def test_missing_key_message_names_the_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1), n_nodes=np.int64(2))
        with pytest.raises(ValueError, match="eu"):
            load_graph(path)

    def test_graph_version_mismatch(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version 99"):
            load_graph(path)

    def test_readset_version_mismatch(self, tmp_path):
        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings(["ACGT"]), path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version 99"):
            load_readset(path)
