"""Tests for npz persistence of graphs and read sets."""

import numpy as np
import pytest

from repro.graph.overlap_graph import OverlapGraph
from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.io.store import load_graph, load_readset, save_graph, save_readset


def sample_graph():
    return OverlapGraph(
        4,
        np.array([0, 1, 2]),
        np.array([1, 2, 3]),
        np.array([10.0, 20.0, 30.0]),
        node_weights=np.array([1, 2, 1, 3]),
        deltas=np.array([40, -15, 7]),
        identities=np.array([0.9, 0.95, 1.0]),
    )


class TestGraphStore:
    def test_roundtrip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.n_nodes == g.n_nodes
        assert (g2.eu == g.eu).all() and (g2.ev == g.ev).all()
        assert (g2.weights == g.weights).all()
        assert (g2.deltas == g.deltas).all()
        assert (g2.identities == g.identities).all()
        assert (g2.node_weights == g.node_weights).all()
        assert g2.has_deltas

    def test_roundtrip_without_deltas(self, tmp_path):
        g = OverlapGraph(2, np.array([0]), np.array([1]), np.array([1.0]))
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert not g2.has_deltas

    def test_csr_rebuilt(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.neighbors(1).tolist() == g.neighbors(1).tolist()

    def test_empty_graph(self, tmp_path):
        g = OverlapGraph(3, np.array([]), np.array([]), np.array([]))
        path = tmp_path / "g.npz"
        save_graph(g, path)
        assert load_graph(path).n_edges == 0


class TestReadSetStore:
    def test_roundtrip_with_quals_and_meta(self, tmp_path):
        reads = ReadSet(
            [
                Read.from_string("a", "ACGT", quals=np.array([10, 20, 30, 40]),
                                 meta={"genus": "Prevotella", "position": 5}),
                Read.from_string("b", "TT", quals=np.array([2, 2])),
            ]
        )
        path = tmp_path / "r.npz"
        save_readset(reads, path)
        back = load_readset(path)
        assert back.ids == ["a", "b"]
        assert back.sequence_of(0) == "ACGT"
        assert back.quals_of(0).tolist() == [10, 20, 30, 40]
        assert back.meta[0]["genus"] == "Prevotella"
        assert back.meta[0]["position"] == 5

    def test_roundtrip_without_quals(self, tmp_path):
        reads = ReadSet.from_strings(["ACG", "TTTT"])
        path = tmp_path / "r.npz"
        save_readset(reads, path)
        back = load_readset(path)
        assert back.quals is None
        assert [back.sequence_of(i) for i in range(2)] == ["ACG", "TTTT"]

    def test_empty_readset(self, tmp_path):
        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings([]), path)
        assert len(load_readset(path)) == 0

    def test_cross_loader_rejected_with_clear_error(self, tmp_path):
        # A readset archive fed to load_graph must not surface a bare
        # KeyError from numpy's lazy dict access.
        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings(["ACGT"]), path)
        with pytest.raises(ValueError, match="missing keys"):
            load_graph(path)

    def test_pipeline_checkpoint(self, tmp_path):
        # align once, save, reload, partition: same edge cut
        from repro.align.overlapper import OverlapConfig, OverlapDetector
        from tests.graph.conftest import tiled_readset

        reads, _ = tiled_readset(genome_len=600)
        overlaps = OverlapDetector(OverlapConfig(min_overlap=50)).find_overlaps(reads)
        g = OverlapGraph.from_overlaps(overlaps, len(reads))
        gp, rp = tmp_path / "g.npz", tmp_path / "r.npz"
        save_graph(g, gp)
        save_readset(reads, rp)
        g2, r2 = load_graph(gp), load_readset(rp)
        assert g2.n_edges == g.n_edges
        assert r2.total_bases == reads.total_bases


class TestCorruptedArchives:
    """Loaders must fail with ValueError, never a bare KeyError."""

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ValueError, match="not a graph archive"):
            load_graph(path)
        with pytest.raises(ValueError, match="not a readset archive"):
            load_readset(path)

    def test_graph_archive_missing_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1), n_nodes=np.int64(2))
        with pytest.raises(ValueError, match="missing keys"):
            load_graph(path)

    def test_readset_archive_missing_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1))
        with pytest.raises(ValueError, match="missing keys"):
            load_readset(path)

    def test_missing_key_message_names_the_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, version=np.int64(1), n_nodes=np.int64(2))
        with pytest.raises(ValueError, match="eu"):
            load_graph(path)

    def test_graph_version_mismatch(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "g.npz"
        save_graph(g, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version 99"):
            load_graph(path)

    def test_readset_version_mismatch(self, tmp_path):
        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings(["ACGT"]), path)
        with np.load(path, allow_pickle=True) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(99)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version 99"):
            load_readset(path)


class TestAtomicWrites:
    """A crash mid-write must never corrupt an existing archive."""

    @staticmethod
    def _crashing_writer(monkeypatch):
        # Simulate the process dying mid-write: emit partial bytes into
        # the (temporary) destination, then blow up before completion.
        import repro.io.store as store_mod

        def exploding_savez(dest, **arrays):
            dest.write(b"PK\x03\x04 partial garbage")
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(
            store_mod.np, "savez_compressed", exploding_savez
        )
        monkeypatch.setattr(store_mod.np, "savez", exploding_savez)

    def test_crash_preserves_previous_archive(self, tmp_path, monkeypatch):
        path = tmp_path / "g.npz"
        g = sample_graph()
        save_graph(g, path)
        self._crashing_writer(monkeypatch)
        with pytest.raises(RuntimeError, match="simulated crash"):
            save_graph(sample_graph(), path)
        # The original archive is untouched and still loads.
        g2 = load_graph(path)
        assert g2.n_edges == g.n_edges
        assert (g2.weights == g.weights).all()

    def test_crash_leaks_no_temp_files(self, tmp_path, monkeypatch):
        path = tmp_path / "g.npz"
        self._crashing_writer(monkeypatch)
        with pytest.raises(RuntimeError):
            save_graph(sample_graph(), path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_success_leaves_only_the_archive(self, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(sample_graph(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["g.npz"]

    def test_npz_suffix_appended_like_numpy(self, tmp_path):
        save_graph(sample_graph(), tmp_path / "noext")
        assert (tmp_path / "noext.npz").exists()


class TestCheckpointStore:
    """Stage-checkpoint persistence (docs/robustness.md)."""

    @staticmethod
    def state(paths=None):
        from repro.io.store import CheckpointState

        return CheckpointState(
            fingerprint={"n_reads": 10, "n_partitions": 4, "seed": 1},
            completed=["transitive", "containment"],
            node_alive=np.array([True, False, True]),
            edge_alive=np.array([True, True, False, False]),
            stage_times={"transitive": 0.25, "containment": 0.5},
            paths=paths,
        )

    def test_roundtrip_without_paths(self, tmp_path):
        from repro.io.store import load_checkpoint, save_checkpoint

        path = tmp_path / "ck.npz"
        state = self.state()
        save_checkpoint(state, path)
        loaded = load_checkpoint(path)
        assert loaded.fingerprint == state.fingerprint
        assert loaded.completed == state.completed
        assert (loaded.node_alive == state.node_alive).all()
        assert (loaded.edge_alive == state.edge_alive).all()
        assert loaded.stage_times == state.stage_times
        assert loaded.paths is None

    def test_roundtrip_with_paths(self, tmp_path):
        from repro.io.store import load_checkpoint, save_checkpoint

        path = tmp_path / "ck.npz"
        paths = [[0, 1, 2], [], [5, 4]]
        save_checkpoint(self.state(paths=paths), path)
        assert load_checkpoint(path).paths == paths

    def test_empty_paths_distinct_from_missing(self, tmp_path):
        from repro.io.store import load_checkpoint, save_checkpoint

        path = tmp_path / "ck.npz"
        save_checkpoint(self.state(paths=[]), path)
        assert load_checkpoint(path).paths == []

    def test_masks_required(self, tmp_path):
        from repro.io.store import CheckpointState, save_checkpoint

        state = CheckpointState(fingerprint={})
        with pytest.raises(ValueError, match="alive-masks"):
            save_checkpoint(state, tmp_path / "ck.npz")

    def test_foreign_archive_rejected(self, tmp_path):
        from repro.io.store import load_checkpoint

        path = tmp_path / "r.npz"
        save_readset(ReadSet.from_strings(["ACGT"]), path)
        with pytest.raises(ValueError, match="missing keys"):
            load_checkpoint(path)

    def test_not_an_archive_rejected(self, tmp_path):
        from repro.io.store import load_checkpoint

        path = tmp_path / "junk.npz"
        path.write_bytes(b"nope")
        with pytest.raises(ValueError, match="not a checkpoint archive"):
            load_checkpoint(path)
