"""Unit tests for FASTA/FASTQ parsing and writing."""

import io

import numpy as np
import pytest

from repro.io.fasta import parse_fasta, write_fasta
from repro.io.fastq import parse_fastq, write_fastq
from repro.io.records import Read


class TestFasta:
    def test_parse_simple(self):
        text = ">r1 desc\nACGT\n>r2\nTT\nGG\n"
        reads = list(parse_fasta(io.StringIO(text)))
        assert [r.id for r in reads] == ["r1", "r2"]
        assert reads[1].sequence == "TTGG"

    def test_parse_blank_lines(self):
        reads = list(parse_fasta(io.StringIO(">a\n\nAC\n\n>b\nGT\n")))
        assert [r.sequence for r in reads] == ["AC", "GT"]

    def test_parse_empty_header_raises(self):
        with pytest.raises(ValueError, match="empty FASTA header"):
            list(parse_fasta(io.StringIO(">\nAC\n")))

    def test_parse_leading_sequence_raises(self):
        with pytest.raises(ValueError, match="before any header"):
            list(parse_fasta(io.StringIO("ACGT\n")))

    def test_parse_empty_stream(self):
        assert list(parse_fasta(io.StringIO(""))) == []

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "x.fa"
        reads = [Read.from_string("a", "ACGT" * 30), Read.from_string("b", "T")]
        write_fasta(reads, path, width=50)
        back = list(parse_fasta(path))
        assert [(r.id, r.sequence) for r in back] == [(r.id, r.sequence) for r in reads]

    def test_write_wraps(self):
        buf = io.StringIO()
        write_fasta([Read.from_string("a", "ACGTACGT")], buf, width=4)
        assert buf.getvalue() == ">a\nACGT\nACGT\n"

    def test_write_bad_width(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), width=0)


class TestFastq:
    def test_parse_simple(self):
        text = "@r1\nACGT\n+\nIIII\n"
        reads = list(parse_fastq(io.StringIO(text)))
        assert reads[0].id == "r1"
        assert reads[0].quals.tolist() == [40, 40, 40, 40]

    def test_parse_bad_header(self):
        with pytest.raises(ValueError, match="malformed FASTQ header"):
            list(parse_fastq(io.StringIO("r1\nAC\n+\nII\n")))

    def test_parse_missing_plus(self):
        with pytest.raises(ValueError, match="separator"):
            list(parse_fastq(io.StringIO("@r1\nAC\nII\nII\n")))

    def test_parse_length_mismatch(self):
        with pytest.raises(ValueError, match="quality length"):
            list(parse_fastq(io.StringIO("@r1\nACGT\n+\nII\n")))

    def test_roundtrip_file(self, tmp_path):
        path = tmp_path / "x.fq"
        reads = [Read.from_string("a", "ACGT", quals=np.array([2, 11, 30, 40]))]
        write_fastq(reads, path)
        back = list(parse_fastq(path))
        assert back[0].sequence == "ACGT"
        assert back[0].quals.tolist() == [2, 11, 30, 40]

    def test_write_requires_quals(self):
        with pytest.raises(ValueError, match="no quality scores"):
            write_fastq([Read.from_string("a", "ACGT")], io.StringIO())

    def test_parse_empty(self):
        assert list(parse_fastq(io.StringIO(""))) == []
