"""Unit + property tests for the columnar ReadSet container."""

import pickle

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.sequence.kmers import canonical_kmer_codes, kmer_codes

seq_lists = st.lists(st.text(alphabet="ACGT", min_size=1, max_size=40), min_size=0, max_size=25)


class TestConstruction:
    def test_empty(self):
        rs = ReadSet()
        assert len(rs) == 0
        assert rs.total_bases == 0

    def test_from_strings(self):
        rs = ReadSet.from_strings(["ACG", "TTTT"])
        assert len(rs) == 2
        assert rs.sequence_of(0) == "ACG"
        assert rs.sequence_of(1) == "TTTT"
        assert rs.total_bases == 7
        assert rs.lengths.tolist() == [3, 4]

    @given(seq_lists)
    def test_roundtrip_property(self, seqs):
        rs = ReadSet.from_strings(seqs)
        assert [rs.sequence_of(i) for i in range(len(rs))] == seqs
        assert rs.total_bases == sum(map(len, seqs))

    def test_getitem_negative(self):
        rs = ReadSet.from_strings(["ACG", "T"])
        assert rs[-1].sequence == "T"

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            ReadSet.from_strings(["A"])[3]

    def test_quals_preserved(self):
        reads = [Read.from_string("a", "ACG", quals=np.array([1, 2, 3]))]
        rs = ReadSet(reads)
        assert rs.quals_of(0).tolist() == [1, 2, 3]

    def test_no_quals_is_none(self):
        rs = ReadSet.from_strings(["ACG"])
        assert rs.quals_of(0) is None


class TestPreprocessing:
    def test_trimmed_drops_short(self):
        reads = [
            Read.from_string("good", "A" * 50, quals=np.full(50, 40)),
            Read.from_string("bad", "A" * 50, quals=np.full(50, 2)),
        ]
        rs = ReadSet(reads).trimmed(min_quality=20, min_length=20)
        assert len(rs) == 1
        assert rs.ids == ["good"]

    def test_with_reverse_complements(self):
        rs = ReadSet.from_strings(["AACG", "TG"]).with_reverse_complements()
        assert len(rs) == 4
        assert rs.sequence_of(2) == "CGTT"
        assert rs.sequence_of(3) == "CA"

    def test_mate_of(self):
        rs = ReadSet.from_strings(["AACG", "TG"]).with_reverse_complements()
        assert rs.mate_of(0) == 2
        assert rs.mate_of(3) == 1

    def test_mate_of_requires_even(self):
        with pytest.raises(ValueError):
            ReadSet.from_strings(["A", "C", "G"]).mate_of(0)

    @given(seq_lists)
    def test_rc_involution_property(self, seqs):
        rs = ReadSet.from_strings(seqs).with_reverse_complements()
        for i in range(len(rs)):
            j = rs.mate_of(i)
            assert rs.mate_of(j) == i


class TestSplit:
    def test_split_covers_all(self):
        rs = ReadSet.from_strings(["A"] * 10)
        chunks = rs.split(3)
        assert sorted(np.concatenate(chunks).tolist()) == list(range(10))

    def test_split_more_subsets_than_reads(self):
        rs = ReadSet.from_strings(["A", "C"])
        chunks = rs.split(5)
        assert len(chunks) == 5
        assert sum(len(c) for c in chunks) == 2

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            ReadSet.from_strings(["A"]).split(0)

    def test_subset(self):
        rs = ReadSet.from_strings(["AA", "CC", "GG"])
        sub = rs.subset(np.array([2, 0]))
        assert [sub.sequence_of(i) for i in range(2)] == ["GG", "AA"]


class TestKmerCache:
    def test_kmer_codes_of_matches_direct(self):
        rs = ReadSet.from_strings(["ACGTACGT", "TTT", "GATTACA"])
        for i in range(len(rs)):
            expected = kmer_codes(rs.codes_of(i), 4)
            assert rs.kmer_codes_of(i, 4).tolist() == expected.tolist()

    def test_kmer_codes_of_canonical(self):
        rs = ReadSet.from_strings(["ACGTACGT", "GATTACA"])
        for i in range(len(rs)):
            expected = canonical_kmer_codes(rs.codes_of(i), 5)
            assert rs.kmer_codes_of(i, 5, canonical=True).tolist() == expected.tolist()

    def test_read_shorter_than_k_is_empty(self):
        rs = ReadSet.from_strings(["AC", "ACGT"])
        assert rs.kmer_codes_of(0, 3).size == 0
        assert rs.kmer_codes_of(1, 3).size == 2

    def test_packed_kmers_cached_and_readonly(self):
        rs = ReadSet.from_strings(["ACGTACGT"])
        a = rs.packed_kmers(4)
        assert rs.packed_kmers(4) is a  # second call hits the cache
        assert not a.flags.writeable
        assert rs.packed_kmers(4, canonical=True) is not a  # distinct entry

    def test_kmer_table_matches_per_read(self):
        rs = ReadSet.from_strings(["ACGTACGT", "TT", "GATTACAGATT"])
        vals, read_ids, offsets = rs.kmer_table(4)
        rows = []
        for i in range(len(rs)):
            codes = kmer_codes(rs.codes_of(i), 4)
            rows.extend((i, off, v) for off, v in enumerate(codes.tolist()))
        got = list(zip(read_ids.tolist(), offsets.tolist(), vals.tolist()))
        assert got == rows
        assert vals.dtype == read_ids.dtype == offsets.dtype == np.int64

    def test_kmer_table_subset(self):
        rs = ReadSet.from_strings(["ACGTACGT", "TTTTT", "GATTACA"])
        vals, read_ids, offsets = rs.kmer_table(4, read_indices=np.array([2, 0]))
        assert set(read_ids.tolist()) == {0, 2}
        # subset order is respected: read 2's windows come first
        assert read_ids.tolist() == sorted(read_ids.tolist(), key=[2, 0].index)
        direct = kmer_codes(rs.codes_of(2), 4)
        n2 = direct.size
        assert vals[:n2].tolist() == direct.tolist()
        assert offsets[:n2].tolist() == list(range(n2))

    def test_pickle_drops_cache(self):
        rs = ReadSet.from_strings(["ACGTACGT", "GATTACA"])
        rs.packed_kmers(4)
        assert rs._kmer_cache
        clone = pickle.loads(pickle.dumps(rs))
        assert clone._kmer_cache == {}
        # and the clone still answers correctly, rebuilding lazily
        assert clone.kmer_codes_of(0, 4).tolist() == rs.kmer_codes_of(0, 4).tolist()
