"""Supervisor scheduling tests: admission, quotas, watchdog, retry.

Admission-policy tests stub out the actual worker spawn (the policy is
what's under test); the end-to-end paths — real worker processes, real
SIGKILLs — live in test_recovery.py.
"""

import time

import pytest

from repro.faults import RetryPolicy
from repro.service import JobSpec, JobStore, Supervisor
from repro.service.supervisor import WorkerHandle

MB = 1 << 20


def spec(**kw):
    kw.setdefault("reads_path", "reads.fasta")
    return JobSpec(**kw)


class FakeProc:
    """A 'running' worker process that never exits."""

    def poll(self):
        return None


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "store"), create=True)


def stub_spawner(sup):
    """Replace worker spawning with bookkeeping; returns the call log."""
    spawned = []

    def fake_spawn(record, job_spec, now):
        lease = sup.store.claim_lease(record.job_id, sup.owner, sup.lease_ttl)
        if lease is None:
            return False
        sup.store.transition(record.job_id, "leased", now=now)
        sup.workers[record.job_id] = WorkerHandle(
            job_id=record.job_id,
            proc=FakeProc(),
            charge=job_spec.charge,
            deadline=job_spec.deadline,
            started=now,
        )
        spawned.append(record.job_id)
        return True

    sup._spawn = fake_spawn
    return spawned


class TestAdmission:
    def test_priority_order_wins_worker_slots(self, store):
        low = store.submit(spec(priority=0), now=1.0)
        high = store.submit(spec(priority=9), now=2.0)
        mid = store.submit(spec(priority=5), now=3.0)
        sup = Supervisor(store, max_workers=2)
        spawned = stub_spawner(sup)
        sup.poll_once()
        assert spawned == [high.job_id, mid.job_id]
        assert store.load_record(low.job_id).state == "queued"

    def test_submit_order_breaks_priority_ties(self, store):
        first = store.submit(spec(priority=1), now=1.0)
        second = store.submit(spec(priority=1), now=2.0)
        sup = Supervisor(store, max_workers=1)
        spawned = stub_spawner(sup)
        sup.poll_once()
        assert spawned == [first.job_id]
        assert store.load_record(second.job_id).state == "queued"

    def test_not_before_holds_a_job_back(self, store):
        held = store.submit(spec(), now=1.0)
        store.transition(held.job_id, "leased", now=1.0)
        store.transition(
            held.job_id, "queued", now=1.0, attempt=2, not_before=100.0
        )
        sup = Supervisor(store)
        spawned = stub_spawner(sup)
        sup.poll_once(now=50.0)
        assert spawned == []
        sup.poll_once(now=101.0)
        assert spawned == [held.job_id]

    def test_memory_budget_defers_second_job(self, store):
        a = store.submit(spec(memory_bytes=60 * MB), now=1.0)
        b = store.submit(spec(memory_bytes=60 * MB), now=2.0)
        sup = Supervisor(store, max_workers=4, memory_budget=100 * MB)
        spawned = stub_spawner(sup)
        sup.poll_once()
        assert spawned == [a.job_id]  # b would breach the budget
        assert store.load_record(b.job_id).state == "queued"

    def test_oversized_job_admitted_alone(self, store):
        # Serial fallback under pressure: a job bigger than the whole
        # budget still runs — by itself.
        big = store.submit(spec(memory_bytes=500 * MB), now=1.0)
        small = store.submit(spec(memory_bytes=60 * MB), now=2.0)
        sup = Supervisor(store, max_workers=4, memory_budget=100 * MB)
        spawned = stub_spawner(sup)
        sup.poll_once()
        # The oversized job was first in queue order and admitted alone;
        # the small job waits (admitting it too would breach the budget).
        assert spawned == [big.job_id]
        assert store.load_record(small.job_id).state == "queued"

    def test_worker_quota_caps_admission(self, store):
        for i in range(5):
            store.submit(spec(), now=float(i))
        sup = Supervisor(store, max_workers=3, memory_budget=10**12)
        spawned = stub_spawner(sup)
        sup.poll_once()
        assert len(spawned) == 3


class TestRecoveryPass:
    def test_stale_leased_job_requeued(self, store):
        record = store.submit(spec(), now=1.0)
        store.transition(record.job_id, "leased", now=1.0)
        store.claim_lease(record.job_id, "dead", ttl=1.0, now=1.0)
        sup = Supervisor(store, max_workers=1)
        stub_spawner(sup)
        summary = sup.poll_once(now=100.0)
        assert summary["recovered"] == 1
        loaded = store.load_record(record.job_id)
        # requeued with a bumped attempt, then re-admitted by the same
        # pass (recover runs before admit)
        assert loaded.attempt == 2

    def test_retry_exhaustion_fails_job(self, store):
        record = store.submit(
            spec(retry=RetryPolicy(max_attempts=1)), now=1.0
        )
        store.transition(record.job_id, "leased", now=1.0)
        store.claim_lease(record.job_id, "dead", ttl=1.0, now=1.0)
        sup = Supervisor(store)
        stub_spawner(sup)
        sup.poll_once(now=100.0)
        loaded = store.load_record(record.job_id)
        assert loaded.state == "failed"
        assert "stale lease" in loaded.error

    def test_fresh_lease_not_recovered(self, store):
        record = store.submit(spec(), now=1.0)
        store.transition(record.job_id, "leased", now=1.0)
        store.claim_lease(record.job_id, "alive", ttl=1000.0)
        sup = Supervisor(store)
        stub_spawner(sup)
        summary = sup.poll_once(now=100.0)
        assert summary["recovered"] == 0
        assert store.load_record(record.job_id).state == "leased"

    def test_requeue_backoff_is_jittered_and_bounded(self, store):
        policy = RetryPolicy(
            max_attempts=3, backoff_base=1.0, backoff_cap=8.0, jitter=0.5
        )
        record = store.submit(spec(retry=policy), now=1.0)
        store.transition(record.job_id, "leased", now=1.0)
        store.claim_lease(record.job_id, "dead", ttl=1.0, now=1.0)
        sup = Supervisor(store, max_workers=1)
        # no spawner stub needed: the requeued job's not_before holds
        # it out of the same pass's admission window
        sup.poll_once(now=100.0)
        loaded = store.load_record(record.job_id)
        delay = loaded.not_before - 100.0
        assert 1.0 <= delay <= 1.5  # base * (1 + jitter)
        # deterministic: the same (job, attempt) always jitters alike
        assert delay == pytest.approx(
            policy.backoff(1, token=record.job_id), abs=1e-9
        )


class TestRunLoop:
    def test_run_is_bounded(self, store):
        sup = Supervisor(store, poll_interval=0.01)
        t0 = time.time()
        sup.run(max_seconds=0.1)
        assert time.time() - t0 < 5.0

    def test_run_drains_on_terminal_store(self, store):
        record = store.submit(spec())
        store.transition(record.job_id, "cancelled")
        sup = Supervisor(store, poll_interval=0.01)
        passes = sup.run(drain=True, max_seconds=30.0)
        assert passes >= 1

    def test_stop_callable_breaks_loop(self, store):
        sup = Supervisor(store, poll_interval=0.01)
        calls = []

        def stop():
            calls.append(1)
            return len(calls) >= 3

        sup.run(max_seconds=30.0, stop=stop)
        assert len(calls) == 3

    def test_validates_quotas(self, store):
        with pytest.raises(ValueError):
            Supervisor(store, max_workers=0)
        with pytest.raises(ValueError):
            Supervisor(store, memory_budget=0)
        with pytest.raises(ValueError):
            Supervisor(store, lease_ttl=0.0)
