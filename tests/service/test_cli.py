"""CLI surface tests: submit / jobs / serve / cancel round trips."""

from repro.cli import main


class TestSubmitJobsServe:
    def test_full_round_trip(self, tmp_path, reads_path, capsys):
        store = str(tmp_path / "jobs.store")
        rc = main(
            [
                "submit",
                store,
                reads_path,
                "--name",
                "cli",
                "--seed",
                "7",
                "--priority",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "submitted cli-" in out
        job_id = out.split()[1]

        rc = main(["jobs", store])
        assert rc == 0
        listing = capsys.readouterr().out
        assert job_id in listing
        assert "queued" in listing

        rc = main(["serve", store, "--drain", "--poll-interval", "0.02",
                   "--lease-ttl", "5", "--max-seconds", "60"])
        assert rc == 0
        assert "done" in capsys.readouterr().out

        rc = main(["jobs", store])
        assert rc == 0
        assert "done" in capsys.readouterr().out

        rc = main(["jobs", store, "--journal", job_id])
        assert rc == 0
        journal = capsys.readouterr().out
        assert "queued" in journal and "done" in journal

    def test_submit_requires_exactly_one_input(self, tmp_path, capsys):
        rc = main(["submit", str(tmp_path / "s")])
        assert rc == 1
        assert "exactly one" in capsys.readouterr().err

    def test_jobs_on_missing_store_errors(self, tmp_path, capsys):
        rc = main(["jobs", str(tmp_path / "nope")])
        assert rc == 1
        assert "not a job store" in capsys.readouterr().err

    def test_cancel_queued_job(self, tmp_path, reads_path, capsys):
        store = str(tmp_path / "jobs.store")
        main(["submit", store, reads_path])
        job_id = capsys.readouterr().out.split()[1]
        rc = main(["cancel", store, job_id])
        assert rc == 0
        assert "cancelled" in capsys.readouterr().out
        # cancelling again is a no-op and exits 1
        rc = main(["cancel", store, job_id])
        assert rc == 1
        assert "ignored" in capsys.readouterr().out


class TestVerifyStoreCli:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        import numpy as np

        from repro.io.records import Read
        from repro.store.reads import pack_reads

        reads = [
            Read(f"r{i}", np.zeros(50, dtype=np.uint8)) for i in range(300)
        ]
        store = str(tmp_path / "reads.store")
        pack_reads(reads, store, shard_size=128)
        rc = main(["verify-store", store])
        assert rc == 0
        assert "scrub: ok" in capsys.readouterr().out

    def test_corrupt_store_exits_one_and_quarantines(self, tmp_path, capsys):
        import os

        import numpy as np

        from repro.io.records import Read
        from repro.store.reads import pack_reads

        reads = [
            Read(f"r{i}", np.zeros(50, dtype=np.uint8)) for i in range(300)
        ]
        store = str(tmp_path / "reads.store")
        pack_reads(reads, store, shard_size=128)
        shard = next(
            e for e in sorted(os.listdir(store)) if e.endswith(".npz")
        )
        with open(os.path.join(store, shard), "r+b") as fh:
            fh.truncate(100)
        rc = main(["verify-store", store, "--quarantine"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "BAD" in out and "quarantined" in out
        assert os.path.exists(os.path.join(store, "quarantine", shard))
