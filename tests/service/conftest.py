"""Shared fixtures for the assembly-service suite."""

import pytest

from repro.service.chaos import write_service_reads


@pytest.fixture(scope="package")
def reads_path(tmp_path_factory):
    """The small deterministic SVC read set, written once per run."""
    path = tmp_path_factory.mktemp("svc") / "reads.fasta"
    return write_service_reads(str(path))
