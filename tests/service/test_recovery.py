"""End-to-end hard-kill recovery: real processes, real SIGKILL.

These are the PR's headline guarantees, exercised through the same
scenario harness the chaos benchmark runs (repro.service.chaos):

- a worker SIGKILLed mid-stage is requeued by its supervisor and the
  resumed attempt produces byte-identical contigs;
- killing the *supervisor and the worker* leaves only the disk, and a
  fresh supervisor process finishes the job byte-identically;
- two supervisors racing over one stale lease resolve to exactly one
  takeover (the rename-CAS + recovery-claim protocol).
"""

import pytest

from repro.service import JobStore
from repro.service.chaos import run_scenario

TIMEOUT = 120.0


@pytest.fixture(scope="module")
def baseline(reads_path, tmp_path_factory):
    root = tmp_path_factory.mktemp("svc-baseline")
    res = run_scenario("baseline", str(root / "store"), reads_path, TIMEOUT)
    assert res.state == "done"
    assert res.contigs
    return res


class TestWorkerKill:
    @pytest.fixture(scope="class")
    def killed(self, reads_path, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc-worker-kill")
        return str(root / "store"), run_scenario(
            "worker-kill", str(root / "store"), reads_path, TIMEOUT
        )

    def test_recovers_byte_identical(self, killed, baseline):
        _, res = killed
        assert res.state == "done"
        assert res.kills == 1
        assert res.contigs == baseline.contigs

    def test_second_attempt_resumed(self, killed):
        _, res = killed
        assert res.attempts == 2
        assert res.takeovers == 1

    def test_journal_tells_the_whole_story(self, killed):
        root, res = killed
        store = JobStore(root)
        entries = store.journal(res.job_id)
        tos = [e.state_to for e in entries]
        # attempt 1 started and checkpointed at least once
        assert tos.count("leased") == 2
        assert "checkpointing" in tos
        # exactly one requeue, from the stale lease (the first queued
        # entry is the submit itself)
        requeues = [
            e
            for e in entries
            if e.state_to == "queued" and e.state_from != "submitted"
        ]
        assert len(requeues) == 1
        assert requeues[0].info.get("requeue") == "stale lease"
        assert tos[-1] == "done"

    def test_resume_skipped_completed_stages(self, killed):
        # The killed attempt journaled stages it checkpointed; the
        # resumed attempt must not re-journal all of them from scratch
        # unless the kill landed before the first checkpoint.
        root, res = killed
        store = JobStore(root)
        entries = store.journal(res.job_id)
        requeue_at = next(
            i
            for i, e in enumerate(entries)
            if e.state_to == "queued" and e.state_from != "submitted"
        )
        stages_before = {
            e.info.get("stage")
            for e in entries[:requeue_at]
            if e.state_to == "checkpointing"
        }
        stages_after = {
            e.info.get("stage")
            for e in entries[requeue_at:]
            if e.state_to == "checkpointing"
        }
        # checkpointed-and-durable stages do not run (or journal) again
        assert not (stages_before & stages_after)


class TestSupervisorKill:
    @pytest.fixture(scope="class")
    def killed(self, reads_path, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc-sup-kill")
        return str(root / "store"), run_scenario(
            "supervisor-kill", str(root / "store"), reads_path, TIMEOUT
        )

    def test_fresh_supervisor_finishes_byte_identical(self, killed, baseline):
        _, res = killed
        assert res.state == "done"
        assert res.kills == 2  # worker AND supervisor
        assert res.contigs == baseline.contigs

    def test_two_distinct_owners(self, killed):
        _, res = killed
        assert res.owners == 2
        assert res.attempts == 2

    def test_result_record_written(self, killed, baseline):
        _, res = killed
        assert res.result["n_contigs"] == baseline.result["n_contigs"]
        assert res.result["n50"] == baseline.result["n50"]


class TestTakeoverRace:
    @pytest.fixture(scope="class")
    def raced(self, reads_path, tmp_path_factory):
        root = tmp_path_factory.mktemp("svc-takeover")
        return str(root / "store"), run_scenario(
            "takeover", str(root / "store"), reads_path, TIMEOUT
        )

    def test_exactly_one_takeover(self, raced):
        _, res = raced
        assert res.takeovers == 1

    def test_job_finishes_byte_identical(self, raced, baseline):
        _, res = raced
        assert res.state == "done"
        assert res.contigs == baseline.contigs

    def test_each_attempt_has_one_owner(self, raced):
        root, res = raced
        store = JobStore(root)
        entries = store.journal(res.job_id)
        # per attempt, at most one supervisor ever leased the job
        leases_by_attempt = {}
        for e in entries:
            if e.state_to == "leased":
                leases_by_attempt.setdefault(e.attempt, []).append(
                    e.info.get("owner")
                )
        for attempt, owners in leases_by_attempt.items():
            assert len(owners) == 1, (attempt, owners)
