"""Worker failure-escalation and cooperative-cancellation paths."""

import time

import pytest

from repro.faults import RetryPolicy
from repro.service import JobSpec, JobStore, Supervisor

POLL = 0.02
TIMEOUT = 60.0


class TestFailureEscalation:
    def test_bad_input_fails_after_retry_budget(self, tmp_path):
        store = JobStore(str(tmp_path / "store"), create=True)
        record = store.submit(
            JobSpec(
                name="doomed",
                reads_path=str(tmp_path / "missing.fasta"),
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.01, backoff_cap=0.02
                ),
            )
        )
        sup = Supervisor(store, lease_ttl=5.0, poll_interval=POLL)
        sup.run(drain=True, max_seconds=TIMEOUT)
        loaded = store.load_record(record.job_id)
        assert loaded.state == "failed"
        assert loaded.attempt == 2
        assert "FileNotFoundError" in loaded.error
        # both attempts journaled: two leases, one worker requeue, one fail
        entries = store.journal(record.job_id)
        tos = [e.state_to for e in entries]
        assert tos.count("leased") == 2
        assert tos[-1] == "failed"
        requeues = [e for e in entries if e.info.get("requeue")]
        assert len(requeues) == 1
        assert requeues[0].info["requeue"] == "worker error"

    def test_failed_job_releases_its_lease(self, tmp_path):
        store = JobStore(str(tmp_path / "store"), create=True)
        record = store.submit(
            JobSpec(
                reads_path=str(tmp_path / "missing.fasta"),
                retry=RetryPolicy(max_attempts=1),
            )
        )
        Supervisor(store, lease_ttl=5.0, poll_interval=POLL).run(
            drain=True, max_seconds=TIMEOUT
        )
        assert store.load_record(record.job_id).state == "failed"
        assert store.read_lease(record.job_id) is None


class TestCooperativeCancel:
    def test_cancel_mid_run_stops_at_stage_boundary(self, tmp_path, reads_path):
        store = JobStore(str(tmp_path / "store"), create=True)
        record = store.submit(
            JobSpec(
                name="cancelme",
                reads_path=reads_path,
                seed=7,
                pause_between_stages=0.2,
            )
        )
        sup = Supervisor(store, lease_ttl=5.0, poll_interval=POLL)
        sup.poll_once()
        deadline = time.time() + TIMEOUT
        while time.time() < deadline:
            if store.load_record(record.job_id).state in (
                "running",
                "checkpointing",
            ):
                break
            time.sleep(POLL)
        else:
            pytest.fail("job never started running")
        assert store.request_cancel(record.job_id) == "requested"
        sup.run(drain=True, max_seconds=TIMEOUT)
        loaded = store.load_record(record.job_id)
        assert loaded.state == "cancelled"
        # cancelled jobs release their lease and never write contigs
        assert store.read_lease(record.job_id) is None
        assert not (
            tmp_path / "store" / "jobs" / record.job_id / "contigs.fasta"
        ).exists()
