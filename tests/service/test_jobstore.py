"""Unit tests for the durable job store: records, journal, crash debris."""

import json
import os

import pytest

from repro.service import JobSpec, JobStore
from repro.service.jobstore import JOURNAL_NAME, STATE_NAME


def spec(**kw):
    kw.setdefault("reads_path", "reads.fasta")
    return JobSpec(**kw)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "store"), create=True)


class TestMarker:
    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(ValueError, match="not a job store"):
            JobStore(str(tmp_path / "nope"))

    def test_reopen_existing(self, store):
        again = JobStore(store.root)
        assert again.root == store.root

    def test_version_mismatch_raises(self, store):
        marker = os.path.join(store.root, "jobstore.json")
        payload = json.load(open(marker))
        payload["version"] = 999
        with open(marker, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError, match="version"):
            JobStore(store.root)

    def test_corrupt_marker_raises(self, store):
        with open(os.path.join(store.root, "jobstore.json"), "w") as fh:
            fh.write("{")
        with pytest.raises(ValueError, match="corrupt"):
            JobStore(store.root)


class TestSubmit:
    def test_submit_creates_queued_job(self, store):
        record = store.submit(spec(name="x", priority=2), now=10.0)
        assert record.state == "queued"
        assert record.job_id.startswith("x-")
        assert record.priority == 2
        assert store.load_record(record.job_id) == record
        assert store.load_spec(record.job_id).name == "x"

    def test_submit_journals_the_birth(self, store):
        record = store.submit(spec(), now=10.0)
        entries = store.journal(record.job_id)
        assert [(e.state_from, e.state_to) for e in entries] == [
            ("submitted", "queued")
        ]

    def test_ids_are_unique(self, store):
        ids = {store.submit(spec()).job_id for _ in range(20)}
        assert len(ids) == 20
        assert sorted(store.list_jobs()) == sorted(ids)

    def test_load_missing_job_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.load_record("ghost")
        with pytest.raises(KeyError):
            store.load_spec("ghost")


class TestTransitions:
    def test_transition_updates_state_and_journal(self, store):
        record = store.submit(spec(), now=1.0)
        store.transition(record.job_id, "leased", now=2.0, info={"owner": "s"})
        store.transition(record.job_id, "running", now=3.0)
        loaded = store.load_record(record.job_id)
        assert loaded.state == "running"
        assert loaded.updated == 3.0
        entries = store.journal(record.job_id)
        assert [e.state_to for e in entries] == ["queued", "leased", "running"]
        assert entries[1].info == {"owner": "s"}

    def test_illegal_transition_not_journaled(self, store):
        record = store.submit(spec())
        with pytest.raises(ValueError):
            store.transition(record.job_id, "done")
        assert [e.state_to for e in store.journal(record.job_id)] == ["queued"]
        assert store.load_record(record.job_id).state == "queued"

    def test_torn_journal_tail_ignored(self, store):
        record = store.submit(spec())
        store.transition(record.job_id, "leased")
        path = os.path.join(store.job_dir(record.job_id), JOURNAL_NAME)
        with open(path, "a") as fh:
            fh.write('{"ts": 99, "from": "leased", "to": "runn')  # torn
        entries = store.journal(record.job_id)
        assert [e.state_to for e in entries] == ["queued", "leased"]

    def test_torn_state_json_never_happens_on_crash(self, store):
        # The state file is replaced atomically; a reader can never see
        # a partial write.  Simulate the tmp file surviving a crash:
        # the store still reads the previous committed record.
        record = store.submit(spec())
        state = os.path.join(store.job_dir(record.job_id), STATE_NAME)
        with open(state + ".tmp.999.0", "w") as fh:
            fh.write('{"job_id": "half')
        assert store.load_record(record.job_id).state == "queued"


class TestCancel:
    def test_cancel_queued_is_immediate(self, store):
        record = store.submit(spec())
        assert store.request_cancel(record.job_id) == "cancelled"
        assert store.load_record(record.job_id).state == "cancelled"

    def test_cancel_active_is_cooperative(self, store):
        record = store.submit(spec())
        store.transition(record.job_id, "leased")
        store.transition(record.job_id, "running")
        assert store.request_cancel(record.job_id) == "requested"
        assert store.cancel_requested(record.job_id)
        # the record is untouched until the worker honors the marker
        assert store.load_record(record.job_id).state == "running"

    def test_cancel_terminal_is_ignored(self, store):
        record = store.submit(spec())
        store.transition(record.job_id, "cancelled")
        assert store.request_cancel(record.job_id) == "ignored"


class TestRecoverable:
    def test_queued_is_not_recoverable(self, store):
        record = store.submit(spec())
        assert not store.recoverable(record)

    def test_active_without_lease_is_recoverable(self, store):
        record = store.submit(spec())
        updated = store.transition(record.job_id, "leased")
        assert store.recoverable(updated)

    def test_active_with_fresh_lease_is_not(self, store):
        record = store.submit(spec())
        updated = store.transition(record.job_id, "leased")
        store.claim_lease(record.job_id, "sup", ttl=100.0)
        assert not store.recoverable(updated)

    def test_active_with_stale_lease_is_recoverable(self, store):
        record = store.submit(spec())
        updated = store.transition(record.job_id, "leased")
        store.claim_lease(record.job_id, "sup", ttl=5.0, now=100.0)
        assert store.recoverable(updated, now=106.0)


class TestResult:
    def test_result_roundtrip(self, store):
        record = store.submit(spec())
        store.write_result(record.job_id, {"n_contigs": 5, "n50": 1234})
        assert store.load_result(record.job_id) == {
            "n_contigs": 5,
            "n50": 1234,
        }
