"""Unit tests for lease claim/heartbeat/takeover arbitration."""

import os
import threading

import pytest

from repro.service import lease as lease_mod
from repro.service.lease import Lease, LeaseLostError


@pytest.fixture
def job_dir(tmp_path):
    d = tmp_path / "job"
    d.mkdir()
    return str(d)


class TestClaim:
    def test_claim_then_read(self, job_dir):
        lease = lease_mod.claim(job_dir, "sup-a", ttl=10.0, now=100.0)
        assert lease is not None
        assert lease.owner == "sup-a"
        assert lease.expires == 110.0
        assert lease.pid == os.getpid()
        assert lease_mod.read(job_dir) == lease

    def test_second_claim_loses(self, job_dir):
        assert lease_mod.claim(job_dir, "a", ttl=10.0) is not None
        assert lease_mod.claim(job_dir, "b", ttl=10.0) is None

    def test_concurrent_claims_one_winner(self, job_dir):
        won = []
        barrier = threading.Barrier(8)

        def racer(name):
            barrier.wait()
            if lease_mod.claim(job_dir, name, ttl=10.0) is not None:
                won.append(name)

        threads = [
            threading.Thread(target=racer, args=(f"sup-{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(won) == 1
        assert lease_mod.read(job_dir).owner == won[0]

    def test_claim_leaves_no_tmp_debris(self, job_dir):
        lease_mod.claim(job_dir, "a", ttl=10.0)
        lease_mod.claim(job_dir, "b", ttl=10.0)  # loser
        assert sorted(os.listdir(job_dir)) == ["lease.json"]

    def test_rejects_nonpositive_ttl(self, job_dir):
        with pytest.raises(ValueError):
            lease_mod.claim(job_dir, "a", ttl=0.0)

    def test_read_absent_is_none(self, job_dir):
        assert lease_mod.read(job_dir) is None

    def test_read_malformed_raises(self, job_dir):
        with open(os.path.join(job_dir, "lease.json"), "w") as fh:
            fh.write("{half a lease")
        with pytest.raises(ValueError):
            lease_mod.read(job_dir)


class TestHeartbeat:
    def test_extends_expiry_and_counts(self, job_dir):
        lease = lease_mod.claim(job_dir, "a", ttl=10.0, now=100.0)
        renewed = lease_mod.heartbeat(job_dir, lease, ttl=10.0, now=105.0)
        assert renewed.expires == 115.0
        assert renewed.beats == 1
        assert lease_mod.read(job_dir) == renewed

    def test_lost_lease_raises(self, job_dir):
        lease = lease_mod.claim(job_dir, "a", ttl=10.0)
        os.unlink(os.path.join(job_dir, "lease.json"))
        with pytest.raises(LeaseLostError):
            lease_mod.heartbeat(job_dir, lease, ttl=10.0)

    def test_taken_over_lease_raises(self, job_dir):
        lease = lease_mod.claim(job_dir, "a", ttl=0.01, now=100.0)
        assert lease_mod.take_over(job_dir, now=200.0)
        other = lease_mod.claim(job_dir, "b", ttl=10.0)
        assert other is not None
        with pytest.raises(LeaseLostError):
            lease_mod.heartbeat(job_dir, lease, ttl=10.0)
        # the new owner's heartbeat still works
        lease_mod.heartbeat(job_dir, other, ttl=10.0)

    def test_pid_handoff(self, job_dir):
        lease = lease_mod.claim(job_dir, "a", ttl=10.0, pid=111)
        renewed = lease_mod.heartbeat(job_dir, lease, ttl=10.0, pid=222)
        assert renewed.pid == 222
        # subsequent beats keep the handed-off pid
        again = lease_mod.heartbeat(job_dir, renewed, ttl=10.0)
        assert again.pid == 222


class TestRelease:
    def test_release_held(self, job_dir):
        lease = lease_mod.claim(job_dir, "a", ttl=10.0)
        assert lease_mod.release(job_dir, lease)
        assert lease_mod.read(job_dir) is None

    def test_release_lost_is_noop(self, job_dir):
        lease = lease_mod.claim(job_dir, "a", ttl=0.01, now=100.0)
        assert lease_mod.take_over(job_dir, now=200.0)
        other = lease_mod.claim(job_dir, "b", ttl=10.0)
        assert not lease_mod.release(job_dir, lease)
        assert lease_mod.read(job_dir) == other


class TestTakeOver:
    def test_fresh_lease_refused(self, job_dir):
        lease_mod.claim(job_dir, "a", ttl=10.0, now=100.0)
        assert not lease_mod.take_over(job_dir, now=105.0)

    def test_stale_lease_cleared(self, job_dir):
        lease_mod.claim(job_dir, "a", ttl=1.0, now=100.0)
        assert lease_mod.take_over(job_dir, now=102.0)
        assert lease_mod.read(job_dir) is None
        # no tombstone debris
        assert os.listdir(job_dir) == []

    def test_absent_lease_is_takeable(self, job_dir):
        assert lease_mod.take_over(job_dir)

    def test_concurrent_takeover_claim_one_owner(self, job_dir):
        # take_over alone lets several racers through once the stale
        # file is gone (absence is takeable by design); the documented
        # protocol is take_over *then* claim.  The safety property at
        # rest: exactly one claimant's token survives in the lease
        # file, and every other claimant discovers the loss on its
        # next heartbeat — which is why lease-guarded side effects
        # must follow a claim or heartbeat, never a bare read.
        lease_mod.claim(job_dir, "dead", ttl=0.01, now=100.0)
        cleared = []
        claims = []
        barrier = threading.Barrier(8)

        def racer(i):
            barrier.wait()
            if lease_mod.take_over(job_dir, now=200.0):
                cleared.append(i)
                guard = lease_mod.claim(job_dir, f"sup-{i}", ttl=10.0)
                if guard is not None:
                    claims.append((i, guard))

        threads = [
            threading.Thread(target=racer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cleared) >= 1
        assert len(claims) >= 1
        final = lease_mod.read(job_dir)
        assert final is not None
        survivors = [i for i, g in claims if g.token == final.token]
        assert len(survivors) == 1
        assert final.owner == f"sup-{survivors[0]}"
        for i, guard in claims:
            if guard.token == final.token:
                lease_mod.heartbeat(job_dir, guard, ttl=10.0)
            else:
                with pytest.raises(LeaseLostError):
                    lease_mod.heartbeat(job_dir, guard, ttl=10.0)

    def test_takeover_restores_a_freshly_claimed_lease(
        self, job_dir, monkeypatch
    ):
        # The ABA race, deterministically: this racer reads the stale
        # lease, then — before its rename — the lease is cleared and a
        # fresh owner claims.  The rename grabs the fresh lease by
        # mistake; the tombstone check must put it back and report the
        # takeover lost.
        lease_mod.claim(job_dir, "dead", ttl=0.01, now=100.0)
        fresh = {}
        real_rename = os.rename

        def steal_window_rename(src, dst):
            if "stale" in dst and not fresh:
                fresh["busy"] = True  # the nested take_over renames too
                assert lease_mod.take_over(job_dir, now=200.0)
                fresh["lease"] = lease_mod.claim(job_dir, "quick", ttl=10.0)
                assert fresh["lease"] is not None
            return real_rename(src, dst)

        monkeypatch.setattr(os, "rename", steal_window_rename)
        assert not lease_mod.take_over(job_dir, now=200.0)
        monkeypatch.setattr(os, "rename", real_rename)
        # the fresh owner's lease survived the attempted steal
        assert lease_mod.read(job_dir) == fresh["lease"]
        lease_mod.heartbeat(job_dir, fresh["lease"], ttl=10.0)
        assert sorted(os.listdir(job_dir)) == ["lease.json"]


class TestLeaseJson:
    def test_roundtrip(self):
        lease = Lease(
            owner="a", token="t" * 32, pid=7, acquired=1.0, expires=2.0, beats=3
        )
        assert Lease.from_json(lease.to_json()) == lease

    def test_stale(self):
        lease = Lease(owner="a", token="t", pid=7, acquired=1.0, expires=2.0)
        assert lease.stale(now=2.0)
        assert not lease.stale(now=1.9)
