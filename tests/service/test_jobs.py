"""Unit tests for the job state machine, specs, and records."""

import pytest

from repro.faults import RetryPolicy
from repro.service import (
    ACTIVE_STATES,
    JOB_STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransitionError,
    JobRecord,
    JobSpec,
)


class TestStateMachine:
    def test_every_state_has_a_transition_row(self):
        assert set(TRANSITIONS) == set(JOB_STATES)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert TRANSITIONS[state] == frozenset()

    def test_active_states_can_requeue(self):
        # The crash-recovery edge: every state a dead process can
        # strand a job in must be able to go back to queued.
        for state in ACTIVE_STATES:
            assert "queued" in TRANSITIONS[state]

    def test_every_nonterminal_state_can_reach_cancelled(self):
        for state in JOB_STATES:
            if state in TERMINAL_STATES:
                continue
            assert "cancelled" in TRANSITIONS[state]

    def test_happy_path_walk(self):
        record = JobRecord(job_id="j", state="queued", created=1.0)
        for i, target in enumerate(
            ["leased", "running", "checkpointing", "running", "done"]
        ):
            record = record.transitioned(target, now=2.0 + i)
        assert record.state == "done"
        assert record.terminal
        assert record.updated == 6.0

    def test_illegal_transition_raises(self):
        record = JobRecord(job_id="j", state="queued")
        with pytest.raises(InvalidTransitionError) as exc:
            record.transitioned("done", now=1.0)
        assert "queued" in str(exc.value) and "done" in str(exc.value)

    def test_terminal_is_final(self):
        record = JobRecord(job_id="j", state="done")
        for target in JOB_STATES:
            with pytest.raises((InvalidTransitionError, ValueError)):
                record.transitioned(target, now=1.0)

    def test_unknown_state_rejected(self):
        record = JobRecord(job_id="j", state="queued")
        with pytest.raises(ValueError):
            record.transitioned("paused", now=1.0)

    def test_transition_carries_fields(self):
        record = JobRecord(job_id="j", state="running", attempt=1)
        requeued = record.transitioned(
            "queued", now=5.0, attempt=2, not_before=7.5, error="boom"
        )
        assert requeued.attempt == 2
        assert requeued.not_before == 7.5
        assert requeued.error == "boom"
        # the original is untouched (records are copied, not mutated)
        assert record.attempt == 1


class TestJobSpec:
    def test_requires_exactly_one_input(self):
        with pytest.raises(ValueError):
            JobSpec(name="j")
        with pytest.raises(ValueError):
            JobSpec(name="j", reads_path="a.fasta", reads_store="b.store")

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            JobSpec(reads_path="a.fasta", n_partitions=3)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            JobSpec(reads_path="a.fasta", backend="gpu")

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            JobSpec(reads_path="a.fasta", deadline=0.0)

    def test_charge_prefers_memory_bytes(self):
        spec = JobSpec(reads_path="a.fasta", memory_bytes=123, cache_budget=456)
        assert spec.charge == 123
        spec = JobSpec(reads_path="a.fasta", memory_bytes=0, cache_budget=456)
        assert spec.charge == 456

    def test_dict_roundtrip_preserves_retry_policy(self):
        spec = JobSpec(
            name="rt",
            reads_path="a.fasta",
            seed=9,
            priority=3,
            retry=RetryPolicy(max_attempts=5, backoff_base=0.25, jitter=0.5),
            deadline=12.0,
            pause_between_stages=0.1,
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.retry.jitter == 0.5

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            JobSpec.from_dict({"reads_path": "a.fasta", "color": "red"})

    def test_assembly_config_mirrors_spec(self):
        spec = JobSpec(
            reads_path="a.fasta",
            n_partitions=8,
            backend="process",
            engine="sparse",
            min_overlap=40,
            min_identity=0.85,
            seed=11,
        )
        cfg = spec.assembly_config()
        assert cfg.n_partitions == 8
        assert cfg.backend == "process"
        assert cfg.finish_engine == "sparse"
        assert cfg.overlap.min_overlap == 40
        assert cfg.overlap.min_identity == 0.85
        assert cfg.seed == 11


class TestJobRecord:
    def test_dict_roundtrip(self):
        record = JobRecord(
            job_id="j-1",
            state="running",
            attempt=2,
            priority=1,
            created=1.0,
            updated=2.0,
            not_before=3.0,
            stage="bubbles",
            error="",
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_from_dict_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            JobRecord.from_dict({"job_id": "j", "state": "zombie"})

    def test_active_and_terminal_flags(self):
        assert JobRecord(job_id="j", state="leased").active
        assert not JobRecord(job_id="j", state="queued").active
        assert JobRecord(job_id="j", state="failed").terminal
        assert not JobRecord(job_id="j", state="running").terminal
