"""End-to-end integration: metagenome assembly + community analysis.

A miniature version of the paper's full workflow (Fig. 7): simulate a
gut community, assemble with Focus, partition the hybrid graph,
classify reads, and verify the community-structure claims — all the
packages working together.
"""

import numpy as np
import pytest

from repro import AssemblyConfig, FocusAssembler
from repro.analysis.classify import KmerClassifier
from repro.analysis.community import (
    genus_partition_matrix,
    max_fraction_per_genus,
    phylum_colocation,
)
from repro.mpi.timing import CommCostModel
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.reads import ReadSimConfig, ReadSimulator
from repro.simulate.taxonomy import PHYLUM_OF

FAST = CommCostModel(alpha=1e-6, beta=1e-9)
K = 8


@pytest.fixture(scope="module")
def pipeline():
    community = build_community(
        CommunityConfig(shared_length=2500, private_length=2000, repeat_copies=0),
        seed=21,
    )
    reads = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=7, seed=21)
    ).simulate_community(community)
    assembler = FocusAssembler(AssemblyConfig(n_partitions=K), cost_model=FAST)
    result = assembler.assemble(reads)
    return community, reads, result


class TestMetagenomePipeline:
    def test_assembly_recovers_most_bases(self, pipeline):
        community, _, result = pipeline
        assert result.stats.total_bases > 0.6 * community.total_genome_bases

    def test_contigs_pure_by_genus(self, pipeline):
        # Each contig's reads should mostly come from one genus: the
        # hybrid clusters respect the linearity of each genome.
        community, _, result = pipeline
        clusters = result.hyb.clusters_of_hybrid()
        meta = result.processed_reads.meta
        impure = 0
        for cluster in clusters:
            genera = {meta[int(r)]["genus"] for r in cluster}
            impure += len(genera) > 1
        assert impure < 0.25 * len(clusters)

    def test_partitions_capture_community(self, pipeline):
        community, _, result = pipeline
        genera = sorted({g.meta["genus"] for g in community.genomes})
        truth = [m.get("genus") for m in result.processed_reads.meta]
        matrix = genus_partition_matrix(truth, result.read_partitions, genera, K)
        assert max_fraction_per_genus(matrix).mean() > 2.0 / K
        same, cross = phylum_colocation(matrix, genera, PHYLUM_OF)
        assert same > cross

    def test_classifier_agrees_with_truth(self, pipeline):
        community, _, result = pipeline
        classifier = KmerClassifier(community.reference_database(), k=21)
        acc = classifier.accuracy_against_truth(result.processed_reads)
        assert acc > 0.9

    def test_partition_balance(self, pipeline):
        _, _, result = pipeline
        parts = result.read_partitions
        counts = np.bincount(parts, minlength=K)
        assert counts.max() < 3 * max(counts.mean(), 1)


class TestDeterminism:
    def test_same_seed_same_assembly(self):
        community = build_community(
            CommunityConfig(shared_length=1500, private_length=1200, repeat_copies=0),
            seed=33,
        )
        reads = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=6, seed=33)
        ).simulate_community(community)
        cfg = AssemblyConfig(n_partitions=4)
        r1 = FocusAssembler(cfg, cost_model=FAST).assemble(reads)
        r2 = FocusAssembler(cfg, cost_model=FAST).assemble(reads)
        assert r1.stats == r2.stats
        assert [c.tolist() for c in r1.contigs] == [c.tolist() for c in r2.contigs]
        assert (r1.read_partitions == r2.read_partitions).all()
