"""Unit + property tests for suffix array construction and search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.suffix_array import SuffixArraySearcher, build_suffix_array, lcp_array
from repro.sequence.dna import encode

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=80)


def naive_sa(codes):
    n = len(codes)
    suffixes = sorted(range(n), key=lambda i: tuple(codes[i:]))
    return suffixes


class TestBuildSuffixArray:
    def test_known_banana_style(self):
        # "ACAACG": check against naive ordering
        codes = encode("ACAACG")
        assert build_suffix_array(codes).tolist() == naive_sa(codes.tolist())

    def test_empty(self):
        assert build_suffix_array(encode("")).size == 0

    def test_single(self):
        assert build_suffix_array(encode("A")).tolist() == [0]

    def test_repetitive(self):
        codes = encode("AAAAAA")
        # Suffix order for A^n: shortest first.
        assert build_suffix_array(codes).tolist() == [5, 4, 3, 2, 1, 0]

    @settings(max_examples=50)
    @given(dna_strings)
    def test_matches_naive(self, s):
        codes = encode(s)
        assert build_suffix_array(codes).tolist() == naive_sa(codes.tolist())

    @given(dna_strings)
    def test_is_permutation(self, s):
        sa = build_suffix_array(encode(s))
        assert sorted(sa.tolist()) == list(range(len(s)))


class TestLcpArray:
    def test_known(self):
        codes = encode("AAAA")
        sa = build_suffix_array(codes)
        lcp = lcp_array(codes, sa)
        assert lcp.tolist() == [0, 1, 2, 3]

    def test_mismatched_length(self):
        with pytest.raises(ValueError):
            lcp_array(encode("ACGT"), np.array([0, 1]))

    @settings(max_examples=30)
    @given(dna_strings)
    def test_lcp_correct(self, s):
        codes = encode(s)
        sa = build_suffix_array(codes)
        lcp = lcp_array(codes, sa)
        for i in range(1, len(s)):
            a = s[sa[i - 1] :]
            b = s[sa[i] :]
            expect = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                expect += 1
            assert lcp[i] == expect


class TestSearcher:
    def test_find_all_occurrences(self):
        text = encode("ACGTACGTAC")
        searcher = SuffixArraySearcher(text)
        assert searcher.find(encode("AC")).tolist() == [0, 4, 8]

    def test_find_absent(self):
        searcher = SuffixArraySearcher(encode("ACGTACGT"))
        assert searcher.find(encode("TTT")).size == 0

    def test_find_full_text(self):
        searcher = SuffixArraySearcher(encode("ACGT"))
        assert searcher.find(encode("ACGT")).tolist() == [0]

    def test_find_longer_than_text(self):
        searcher = SuffixArraySearcher(encode("AC"))
        assert searcher.find(encode("ACGT")).size == 0

    def test_empty_pattern_raises(self):
        with pytest.raises(ValueError):
            SuffixArraySearcher(encode("AC")).find(encode(""))

    def test_bad_sa_rejected(self):
        with pytest.raises(ValueError):
            SuffixArraySearcher(encode("ACG"), sa=np.array([0]))

    @settings(max_examples=30)
    @given(dna_strings.filter(lambda s: len(s) >= 4), st.data())
    def test_find_matches_bruteforce(self, s, data):
        k = data.draw(st.integers(min_value=1, max_value=min(6, len(s))))
        start = data.draw(st.integers(min_value=0, max_value=len(s) - k))
        pattern = s[start : start + k]
        searcher = SuffixArraySearcher(encode(s))
        found = searcher.find(encode(pattern)).tolist()
        expect = [i for i in range(len(s) - k + 1) if s[i : i + k] == pattern]
        assert found == expect
