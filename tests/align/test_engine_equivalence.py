"""Property test: all four overlap execution paths agree exactly.

The legacy per-query loop, the batch-vectorized engine, the
multiprocess driver, and the simulated-cluster driver must return
identical overlap sets for any read set and either reference index.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.overlapper import OverlapConfig, OverlapDetector
from repro.io.readset import ReadSet
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.sequence.dna import decode
from repro.simulate.genome import random_genome

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


@st.composite
def genome_readsets(draw):
    """Read sets of overlapping substrings of one random genome."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    genome_len = draw(st.integers(min_value=150, max_value=400))
    genome = random_genome(genome_len, np.random.default_rng(seed))
    n_reads = draw(st.integers(min_value=0, max_value=14))
    seqs = []
    for _ in range(n_reads):
        length = draw(st.integers(min_value=30, max_value=min(130, genome_len)))
        start = draw(st.integers(min_value=0, max_value=genome_len - length))
        seqs.append(decode(genome[start : start + length]))
    return ReadSet.from_strings(seqs)


def overlap_keys(overlaps):
    return sorted(
        (o.query, o.ref, o.q_start, o.r_start, o.length, o.identity, o.kind.value)
        for o in overlaps
    )


@pytest.mark.parametrize("index", ["kmer", "suffix_array"])
class TestEngineEquivalence:
    @settings(max_examples=5, deadline=None)
    @given(reads=genome_readsets(), n_subsets=st.integers(min_value=1, max_value=3))
    def test_all_paths_identical(self, index, reads, n_subsets):
        base = OverlapConfig(
            min_overlap=25, min_kmer_hits=2, n_subsets=n_subsets, index=index
        )
        vectorized = OverlapDetector(base).find_overlaps(reads)
        loop = OverlapDetector(
            OverlapConfig(
                min_overlap=25, min_kmer_hits=2, n_subsets=n_subsets,
                index=index, engine="loop",
            )
        ).find_overlaps(reads)
        processes = OverlapDetector(base).find_overlaps_processes(reads, n_workers=2)
        cluster_results, _ = SimCluster(2, cost_model=FAST).run(
            OverlapDetector(base).find_overlaps_parallel, reads
        )
        expected = overlap_keys(vectorized)
        assert overlap_keys(loop) == expected
        assert overlap_keys(processes) == expected
        assert overlap_keys(cluster_results[0]) == expected

    @settings(max_examples=3, deadline=None)
    @given(reads=genome_readsets())
    def test_banded_nw_method_paths_agree(self, index, reads):
        # The gapped-verification fallback runs per candidate in every
        # engine; the batched span selection feeding it must still agree.
        configs = {
            engine: OverlapConfig(
                min_overlap=25, min_kmer_hits=2, method="banded_nw",
                index=index, engine=engine,
            )
            for engine in ("vectorized", "loop")
        }
        results = {
            engine: OverlapDetector(cfg).find_overlaps(reads)
            for engine, cfg in configs.items()
        }
        assert overlap_keys(results["vectorized"]) == overlap_keys(results["loop"])
