"""Unit tests for the sorted k-mer index."""

import numpy as np
import pytest

from repro.align.kmer_index import KmerIndex
from repro.io.readset import ReadSet
from repro.sequence.dna import encode
from repro.sequence.kmers import kmer_codes


class TestKmerIndex:
    def test_build_counts(self):
        rs = ReadSet.from_strings(["ACGTA", "CGT"])
        idx = KmerIndex(rs, 3)
        # read0 has 3 k-mers, read1 has 1
        assert len(idx) == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerIndex(ReadSet.from_strings(["ACG"]), 0)

    def test_lookup_positions(self):
        rs = ReadSet.from_strings(["ACGTACGT"])
        idx = KmerIndex(rs, 4)
        vals = kmer_codes(encode("ACGT"), 4)
        qpos, hit_reads, hit_offsets = idx.lookup(vals)
        assert (hit_reads == 0).all()
        assert sorted(hit_offsets.tolist()) == [0, 4]
        assert (qpos == 0).all()

    def test_lookup_absent(self):
        rs = ReadSet.from_strings(["AAAA"])
        idx = KmerIndex(rs, 3)
        qpos, _, _ = idx.lookup(kmer_codes(encode("CCC"), 3))
        assert qpos.size == 0

    def test_lookup_skips_invalid(self):
        rs = ReadSet.from_strings(["AAAA"])
        idx = KmerIndex(rs, 3)
        qpos, _, _ = idx.lookup(np.array([-1, -1]))
        assert qpos.size == 0

    def test_subset_restriction(self):
        rs = ReadSet.from_strings(["ACGT", "ACGT", "ACGT"])
        idx = KmerIndex(rs, 4, read_indices=np.array([1]))
        _, hit_reads, _ = idx.lookup(kmer_codes(encode("ACGT"), 4))
        assert set(hit_reads.tolist()) == {1}

    def test_reads_shorter_than_k_skipped(self):
        rs = ReadSet.from_strings(["AC", "ACGT"])
        idx = KmerIndex(rs, 3)
        assert set(idx.kmer_reads.tolist()) == {1}

    def test_hit_counts(self):
        rs = ReadSet.from_strings(["ACGTACGT", "ACGTAAAA"])
        idx = KmerIndex(rs, 4)
        counts = idx.hit_counts(kmer_codes(encode("ACGTACGT"), 4))
        # 5 windows; the two ACGT windows each hit both ACGT positions -> 7 pairs
        assert counts[0] == 7
        assert counts[1] >= 1  # shares ACGT prefix k-mers

    def test_hit_counts_exclude(self):
        rs = ReadSet.from_strings(["ACGTACGT"])
        idx = KmerIndex(rs, 4)
        counts = idx.hit_counts(kmer_codes(encode("ACGTACGT"), 4), exclude_read=0)
        assert counts == {}

    def test_empty_index_lookup(self):
        rs = ReadSet.from_strings([])
        idx = KmerIndex(rs, 3)
        qpos, _, _ = idx.lookup(np.array([5]))
        assert qpos.size == 0

    def test_lookup_dtypes_int64(self):
        # Regression: the expansion index must be int64, not the
        # platform default — downstream composite-key sorts assume it.
        rs = ReadSet.from_strings(["ACGTACGT", "TACGTACG"])
        idx = KmerIndex(rs, 4)
        vals = kmer_codes(encode("ACGTACGTAC"), 4)
        qpos, hit_reads, hit_offsets = idx.lookup(vals)
        assert qpos.size > 0
        assert qpos.dtype == np.int64
        assert hit_reads.dtype == np.int64
        assert hit_offsets.dtype == np.int64

    def test_large_batch_lookup_matches_small(self):
        # The unique-compression fast path (big batches) must return
        # exactly what the direct searchsorted path returns.
        rng = np.random.default_rng(5)
        rs = ReadSet.from_strings(
            ["".join(rng.choice(list("ACGT"), 60)) for _ in range(20)]
        )
        idx = KmerIndex(rs, 7)
        vals = rs.packed_kmers(7)  # includes boundary windows; lookup filters
        big = idx.lookup(np.tile(vals, 50))  # force the compressed branch
        small = idx.lookup(vals)
        n = small[0].size
        assert big[0].size == 50 * n
        for b_arr, s_arr in zip(big, small):
            assert (b_arr[:n] == s_arr).all()

    def test_lookup_query_positions_align(self):
        # query read with known shared k-mer at a known offset
        rs = ReadSet.from_strings(["TTTTACGTAC"])
        idx = KmerIndex(rs, 5)
        q = encode("GGACGTACGG")
        vals = kmer_codes(q, 5)
        qpos, hit_reads, hit_offsets = idx.lookup(vals)
        # 'ACGTA' occurs at query offset 2 and ref offset 4
        pairs = set(zip(qpos.tolist(), hit_offsets.tolist()))
        assert (2, 4) in pairs
