"""Unit tests for overlap geometry and records."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.overlap import Overlap, OverlapKind, classify_overlap, overlap_span


class TestOverlapSpan:
    def test_positive_diagonal(self):
        # query position = ref position + 30; reads of length 100
        q, r, length = overlap_span(30, 100, 100)
        assert (q, r, length) == (30, 0, 70)

    def test_negative_diagonal(self):
        q, r, length = overlap_span(-30, 100, 100)
        assert (q, r, length) == (0, 30, 70)

    def test_zero_diagonal(self):
        assert overlap_span(0, 100, 100) == (0, 0, 100)

    def test_containment_span(self):
        # ref of 50 inside query of 100 at offset 20
        q, r, length = overlap_span(20, 100, 50)
        assert (q, r, length) == (20, 0, 50)

    def test_disjoint(self):
        _, _, length = overlap_span(150, 100, 100)
        assert length <= 0

    @given(
        st.integers(min_value=-200, max_value=200),
        st.integers(min_value=1, max_value=150),
        st.integers(min_value=1, max_value=150),
    )
    def test_span_within_bounds(self, d, lq, lr):
        q, r, length = overlap_span(d, lq, lr)
        if length > 0:
            assert 0 <= q and q + length <= lq
            assert 0 <= r and r + length <= lr
            assert q == 0 or r == 0  # one end is flush


class TestClassifyOverlap:
    def test_query_left(self):
        assert classify_overlap(30, 0, 70, 100, 100) == OverlapKind.QUERY_LEFT

    def test_query_right(self):
        assert classify_overlap(0, 30, 70, 100, 100) == OverlapKind.QUERY_RIGHT

    def test_query_contained(self):
        assert classify_overlap(0, 20, 50, 50, 100) == OverlapKind.QUERY_CONTAINED

    def test_ref_contained(self):
        assert classify_overlap(20, 0, 50, 100, 50) == OverlapKind.REF_CONTAINED

    def test_equal(self):
        assert classify_overlap(0, 0, 100, 100, 100) == OverlapKind.EQUAL

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            classify_overlap(0, 0, 0, 10, 10)


class TestOverlapRecord:
    def make(self, kind=OverlapKind.QUERY_LEFT):
        return Overlap(query=1, ref=2, q_start=30, r_start=0, length=70, identity=0.95, kind=kind)

    def test_validation(self):
        with pytest.raises(ValueError):
            Overlap(1, 2, 0, 0, -1, 0.9, OverlapKind.EQUAL)
        with pytest.raises(ValueError):
            Overlap(1, 2, 0, 0, 10, 1.5, OverlapKind.EQUAL)

    def test_reversed_swaps_roles(self):
        rev = self.make().reversed()
        assert rev.query == 2 and rev.ref == 1
        assert rev.q_start == 0 and rev.r_start == 30
        assert rev.kind == OverlapKind.QUERY_RIGHT

    def test_reversed_involution(self):
        for kind in OverlapKind:
            ov = self.make(kind)
            assert ov.reversed().reversed() == ov

    def test_containment_reversal(self):
        ov = Overlap(1, 2, 0, 10, 50, 1.0, OverlapKind.QUERY_CONTAINED)
        assert ov.reversed().kind == OverlapKind.REF_CONTAINED
