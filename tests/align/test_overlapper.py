"""Unit + integration tests for the overlap detector."""

import numpy as np
import pytest

from repro.align.overlap import OverlapKind
from repro.align.overlapper import OverlapConfig, OverlapDetector, subset_pairs
from repro.io.readset import ReadSet
from repro.sequence.dna import decode
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def tiled_reads(genome_len=600, read_len=100, stride=40, seed=0):
    """Error-free reads tiled across a random genome at fixed stride."""
    g = random_genome(genome_len, np.random.default_rng(seed))
    seqs = [decode(g[s : s + read_len]) for s in range(0, genome_len - read_len + 1, stride)]
    return ReadSet.from_strings(seqs), g


class TestSubsetPairs:
    def test_counts(self):
        assert subset_pairs(1) == [(0, 0)]
        assert len(subset_pairs(4)) == 10  # 4 choose 2 + 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            subset_pairs(0)


class TestOverlapConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(k=0),
            dict(min_kmer_hits=0),
            dict(min_overlap=0),
            dict(min_identity=1.2),
            dict(method="smith_waterman"),
            dict(n_subsets=0),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            OverlapConfig(**kw)


class TestOverlapDetection:
    def test_adjacent_reads_overlap(self):
        reads, _ = tiled_reads()
        det = OverlapDetector(OverlapConfig(min_overlap=50, min_kmer_hits=3))
        overlaps = det.find_overlaps(reads)
        found = {(o.query, o.ref) for o in overlaps}
        # stride 40, read 100 -> neighbours overlap by 60, next-neighbours by 20 (<50)
        n = len(reads)
        for i in range(n - 1):
            assert (i, i + 1) in found, f"missing adjacent overlap {i},{i+1}"
        for i in range(n - 2):
            assert (i, i + 2) not in found

    def test_overlap_lengths_exact(self):
        reads, _ = tiled_reads()
        det = OverlapDetector(OverlapConfig(min_overlap=50))
        for ov in det.find_overlaps(reads):
            assert ov.length == 60
            assert ov.identity == 1.0
            assert ov.kind == OverlapKind.QUERY_LEFT  # later reads start further right

    def test_no_duplicate_pairs(self):
        reads, _ = tiled_reads()
        det = OverlapDetector(OverlapConfig(min_overlap=50))
        overlaps = det.find_overlaps(reads)
        keys = [(o.query, o.ref) for o in overlaps]
        assert len(keys) == len(set(keys))
        assert all(q < r for q, r in keys)  # single subset -> ordered pairs

    def test_subsets_find_same_overlaps(self):
        reads, _ = tiled_reads(genome_len=800)
        base = OverlapDetector(OverlapConfig(min_overlap=50)).find_overlaps(reads)
        split = OverlapDetector(OverlapConfig(min_overlap=50, n_subsets=3)).find_overlaps(reads)
        as_set = lambda ovs: {(min(o.query, o.ref), max(o.query, o.ref), o.length) for o in ovs}
        assert as_set(base) == as_set(split)

    def test_containment_detected(self):
        reads, g = tiled_reads()
        inner = decode(g[10:80])  # contained in read 0 (0..100)
        reads2 = ReadSet.from_strings([reads.sequence_of(i) for i in range(len(reads))] + [inner])
        det = OverlapDetector(OverlapConfig(min_overlap=50))
        overlaps = det.find_overlaps(reads2)
        cont = [o for o in overlaps if OverlapKind.QUERY_CONTAINED in (o.kind,) or o.kind == OverlapKind.REF_CONTAINED]
        assert any(
            (o.query == len(reads2) - 1 and o.kind == OverlapKind.REF_CONTAINED)
            or (o.ref == len(reads2) - 1 and o.kind == OverlapKind.QUERY_CONTAINED)
            for o in overlaps
        ) or cont

    def test_identity_threshold_enforced(self):
        reads, _ = tiled_reads()
        seqs = [reads.sequence_of(i) for i in range(2)]
        # corrupt 20% of the second read's overlap region
        s1 = list(seqs[1])
        for i in range(0, 60, 5):
            s1[i] = "A" if s1[i] != "A" else "C"
        noisy = ReadSet.from_strings([seqs[0], "".join(s1)])
        det = OverlapDetector(OverlapConfig(min_overlap=50, min_identity=0.95, min_kmer_hits=1))
        assert det.find_overlaps(noisy) == []

    def test_banded_nw_method_agrees_on_clean_data(self):
        reads, _ = tiled_reads(genome_len=400)
        fast = OverlapDetector(OverlapConfig(min_overlap=50)).find_overlaps(reads)
        nw = OverlapDetector(OverlapConfig(min_overlap=50, method="banded_nw")).find_overlaps(reads)
        key = lambda ovs: {(o.query, o.ref) for o in ovs}
        assert key(fast) == key(nw)

    def test_simulated_reads_with_errors(self):
        g = Genome("g", random_genome(3000, np.random.default_rng(1)))
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=8, seed=1))
        reads = sim.simulate_genome(g)
        det = OverlapDetector(OverlapConfig(min_overlap=50, min_identity=0.9))
        overlaps = det.find_overlaps(reads)
        # At 8x coverage nearly every read overlaps several others.
        assert len(overlaps) > len(reads)
        # Verify detected overlaps against ground-truth positions (same-strand pairs).
        checked = 0
        for ov in overlaps[:200]:
            mq, mr = reads.meta[ov.query], reads.meta[ov.ref]
            if mq["strand"] == "+" and mr["strand"] == "+":
                true_diag = mr["position"] - mq["position"]
                assert ov.q_start - ov.r_start == true_diag
                checked += 1
        assert checked > 0

    def test_empty_readset(self):
        det = OverlapDetector()
        assert det.find_overlaps(ReadSet.from_strings([])) == []

    def test_no_overlap_between_unrelated(self):
        rng = np.random.default_rng
        a = decode(random_genome(100, rng(1)))
        b = decode(random_genome(100, rng(2)))
        det = OverlapDetector(OverlapConfig(min_overlap=50))
        assert det.find_overlaps(ReadSet.from_strings([a, b])) == []
