"""Unit + property tests for banded Needleman-Wunsch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banded_nw import banded_align
from repro.sequence.dna import encode

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestBandedAlign:
    def test_identical(self):
        r = banded_align(encode("ACGTACGT"), encode("ACGTACGT"))
        assert r.matches == 8
        assert r.mismatches == 0
        assert r.gaps == 0
        assert r.identity == 1.0
        assert r.score == 8.0

    def test_single_mismatch(self):
        r = banded_align(encode("ACGTACGT"), encode("ACGAACGT"))
        assert r.matches == 7
        assert r.mismatches == 1
        assert r.identity == pytest.approx(7 / 8)

    def test_single_insertion(self):
        r = banded_align(encode("ACGTACGT"), encode("ACGTTACGT"))
        assert r.gaps == 1
        assert r.matches == 8
        assert r.length == 9

    def test_single_deletion(self):
        r = banded_align(encode("ACGTACGT"), encode("ACGACGT"))
        assert r.gaps == 1
        assert r.matches == 7

    def test_empty_vs_seq(self):
        r = banded_align(encode(""), encode("ACG"))
        assert r.gaps == 3
        assert r.matches == 0
        assert r.length == 3

    def test_both_empty(self):
        r = banded_align(encode(""), encode(""))
        assert r.length == 0
        assert r.identity == 1.0

    def test_band_widened_for_length_gap(self):
        # len diff 10 > band 2 -> auto-widen must keep path feasible
        r = banded_align(encode("A" * 5), encode("A" * 15), band=2)
        assert r.matches == 5
        assert r.gaps == 10

    def test_invalid_scoring(self):
        with pytest.raises(ValueError):
            banded_align(encode("A"), encode("A"), gap=0)
        with pytest.raises(ValueError):
            banded_align(encode("A"), encode("A"), mismatch=2, match=1)

    def test_score_consistency(self):
        a, b = encode("ACGTGTCA"), encode("ACGTCA")
        r = banded_align(a, b, match=1, mismatch=-1, gap=-2)
        assert r.score == pytest.approx(r.matches - r.mismatches - 2 * r.gaps)

    @settings(max_examples=40)
    @given(dna_strings)
    def test_self_alignment_perfect(self, s):
        r = banded_align(encode(s), encode(s), band=3)
        assert r.matches == len(s)
        assert r.gaps == 0 and r.mismatches == 0

    @settings(max_examples=40)
    @given(dna_strings, dna_strings)
    def test_length_accounting(self, s, t):
        r = banded_align(encode(s), encode(t), band=8)
        assert r.length == r.matches + r.mismatches + r.gaps
        # every column consumes at least one base; gaps account for the rest
        assert r.length >= max(len(s), len(t))
        assert 0.0 <= r.identity <= 1.0

    @settings(max_examples=30)
    @given(dna_strings)
    def test_symmetry_of_score(self, s):
        t = s[::-1]
        r1 = banded_align(encode(s), encode(t), band=10)
        r2 = banded_align(encode(t), encode(s), band=10)
        assert r1.score == pytest.approx(r2.score)
