"""Tests for the suffix-array read index and parallel alignment."""

import numpy as np
import pytest

from repro.align.kmer_index import KmerIndex
from repro.align.overlapper import OverlapConfig, OverlapDetector
from repro.align.sa_index import SuffixArrayReadIndex
from repro.io.readset import ReadSet
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.sequence.dna import encode
from repro.sequence.kmers import kmer_codes
from tests.align.test_overlapper import tiled_reads

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


class TestSuffixArrayReadIndex:
    def test_matches_kmer_index(self):
        rs = ReadSet.from_strings(["ACGTACGTAC", "TTACGTAAAC", "GGGGACGTAC"])
        k = 5
        sa_idx = SuffixArrayReadIndex(rs, k)
        km_idx = KmerIndex(rs, k)
        for query in ("ACGTACGTAC", "TTTTT", "GACGT"):
            vals = kmer_codes(encode(query), k)
            a = sa_idx.lookup(vals)
            b = km_idx.lookup(vals)
            key = lambda t: sorted(zip(t[0].tolist(), t[1].tolist(), t[2].tolist()))
            assert key(a) == key(b), f"disagreement for {query}"

    def test_no_boundary_spanning_matches(self):
        # "AC|GT" concatenated: pattern ACGT must NOT match across reads
        rs = ReadSet.from_strings(["AAAC", "GTTT"])
        idx = SuffixArrayReadIndex(rs, 4)
        vals = kmer_codes(encode("ACGT"), 4)
        qpos, _, _ = idx.lookup(vals)
        assert qpos.size == 0

    def test_subset_restriction(self):
        rs = ReadSet.from_strings(["ACGTA", "ACGTA", "ACGTA"])
        idx = SuffixArrayReadIndex(rs, 5, read_indices=np.array([2]))
        vals = kmer_codes(encode("ACGTA"), 5)
        _, hit_reads, _ = idx.lookup(vals)
        assert set(hit_reads.tolist()) == {2}

    def test_len_counts_windows(self):
        rs = ReadSet.from_strings(["ACGTAC", "AC"])
        assert len(SuffixArrayReadIndex(rs, 3)) == 4  # 4 + 0 windows

    def test_empty_readset(self):
        idx = SuffixArrayReadIndex(ReadSet.from_strings([]), 3)
        qpos, _, _ = idx.lookup(np.array([7]))
        assert qpos.size == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SuffixArrayReadIndex(ReadSet.from_strings(["ACG"]), 0)


class TestDetectorWithSuffixArray:
    def test_same_overlaps_as_kmer_index(self):
        reads, _ = tiled_reads(genome_len=500)
        km = OverlapDetector(OverlapConfig(min_overlap=50, index="kmer")).find_overlaps(reads)
        sa = OverlapDetector(
            OverlapConfig(min_overlap=50, index="suffix_array")
        ).find_overlaps(reads)
        key = lambda ovs: sorted((o.query, o.ref, o.length) for o in ovs)
        assert key(km) == key(sa)

    def test_invalid_index_name(self):
        with pytest.raises(ValueError):
            OverlapConfig(index="btree")


class TestParallelAlignment:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3])
    def test_matches_serial(self, n_ranks):
        reads, _ = tiled_reads(genome_len=800)
        detector = OverlapDetector(OverlapConfig(min_overlap=50, n_subsets=4))
        serial = detector.find_overlaps(reads)
        results, stats = SimCluster(n_ranks, cost_model=FAST).run(
            detector.find_overlaps_parallel, reads
        )
        key = lambda ovs: sorted((o.query, o.ref, o.length, o.identity) for o in ovs)
        for r in results:
            assert key(r) == key(serial)
        assert stats.elapsed > 0

    def test_work_spread_over_ranks(self):
        reads, _ = tiled_reads(genome_len=1200)
        detector = OverlapDetector(OverlapConfig(min_overlap=50, n_subsets=4))
        _, stats = SimCluster(4, cost_model=FAST).run(
            detector.find_overlaps_parallel, reads
        )
        busy = [c for c in stats.compute_times if c > 0]
        assert len(busy) >= 3  # 10 subset pairs round-robin on 4 ranks
