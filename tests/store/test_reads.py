"""Shard-backed ReadSet: equivalence with in-RAM, pickling, memory."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.store import ShardedReadSet, pack_reads


def make_reads(n=57, with_quals=True, seed=11):
    rng = np.random.default_rng(seed)
    reads = []
    for i in range(n):
        length = int(rng.integers(40, 120))
        codes = rng.integers(0, 4, length).astype(np.uint8)
        quals = rng.integers(10, 40, length) if with_quals else None
        reads.append(
            Read(f"r{i}", codes, quals=quals, meta={"lane": i % 3})
        )
    return reads


@pytest.fixture()
def stores(tmp_path):
    reads = make_reads()
    path = str(tmp_path / "reads.store")
    pack_reads(iter(reads), path, shard_size=10)
    return ReadSet(reads), ReadSet.open(path), path


class TestEquivalence:
    def test_open_returns_sharded_readset(self, stores):
        _, opened, _ = stores
        assert isinstance(opened, ShardedReadSet)
        assert isinstance(opened, ReadSet)

    def test_per_read_accessors_match(self, stores):
        ram, opened, _ = stores
        assert len(opened) == len(ram)
        for i in range(len(ram)):
            assert (opened.codes_of(i) == ram.codes_of(i)).all()
            assert (opened.quals_of(i) == ram.quals_of(i)).all()
            assert opened.ids[i] == ram.ids[i]
            assert opened.meta[i] == ram.meta[i]

    def test_bulk_primitives_match(self, stores):
        ram, opened, _ = stores
        assert (opened.to_array() == ram.data).all()
        assert (opened.offsets[:] == ram.offsets).all()
        flat = np.array([0, 5, 999, 1203, 17])
        assert (opened.gather_bases(flat) == ram.gather_bases(flat)).all()
        lo = int(ram.offsets[3])
        ln = int(ram.offsets[4] - ram.offsets[3])
        assert (opened.base_span(lo, ln) == ram.base_span(lo, ln)).all()

    def test_kmer_primitives_match(self, stores):
        ram, opened, _ = stores
        for i in (0, 9, 10, 56):  # shard interior and boundaries
            assert (
                opened.kmer_codes_of(i, 16) == ram.kmer_codes_of(i, 16)
            ).all()
        idx = np.array([3, 11, 29, 41])
        for a, b in zip(opened.kmer_table(16, idx), ram.kmer_table(16, idx)):
            assert (a == b).all()

    def test_derived_sets_match(self, stores):
        ram, opened, path = stores
        rt, ot = ram.trimmed(trim5=2, min_length=45), None
        ot = opened.trimmed(trim5=2, min_length=45)
        assert isinstance(ot, ShardedReadSet)
        assert len(ot) == len(rt)
        for i in range(len(rt)):
            assert (ot.codes_of(i) == rt.codes_of(i)).all()
        rrc, orc = ram.with_reverse_complements(), opened.with_reverse_complements()
        assert isinstance(orc, ShardedReadSet)
        assert len(orc) == len(rrc)
        for i in (0, len(rrc) - 1):
            assert (orc.codes_of(i) == rrc.codes_of(i)).all()

    def test_derived_store_is_reused(self, stores):
        _, opened, _ = stores
        first = opened.trimmed(trim5=2, min_length=45)
        again = opened.trimmed(trim5=2, min_length=45)
        assert first.store_path == again.store_path


class TestPickleContract:
    """Satellite: shard-backed sets ship as (path, budget), not arrays."""

    def test_pickle_is_tiny(self, stores):
        _, opened, _ = stores
        opened.to_array()  # materialize caches that must NOT be pickled
        blob = pickle.dumps(opened)
        assert len(blob) < 512

    def test_state_has_no_arrays(self, stores):
        _, opened, path = stores
        state = opened.__getstate__()
        assert set(state) == {"store_path", "cache_budget"}
        assert state["store_path"] == path

    def test_unpickled_set_reopens_and_matches(self, stores):
        ram, opened, _ = stores
        clone = pickle.loads(pickle.dumps(opened))
        assert isinstance(clone, ShardedReadSet)
        for i in (0, 13, 56):
            assert (clone.codes_of(i) == ram.codes_of(i)).all()

    def test_reopen_starts_with_cold_cache(self, stores):
        _, opened, _ = stores
        opened.to_array()
        fresh = opened.reopen()
        assert fresh.store.cache.stats().misses == 0
        assert len(fresh.store.cache) == 0


def _forked_scan(blob, budget, conn):
    import tracemalloc

    tracemalloc.start()
    reads = pickle.loads(blob)
    total = 0
    for i in range(len(reads)):
        total += int(reads.codes_of(i).sum())
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    conn.send((total, peak, reads.store.cache.stats().evictions))
    conn.close()


class TestForkedWorkerMemory:
    def test_forked_worker_peak_stays_bounded(self, tmp_path):
        """A worker streaming a store must peak at O(cache budget).

        The store here is ~1.5 MB of reads; the worker's cache budget
        is 64 KiB.  If unpickling shipped the arrays, or the scan
        materialized the store, the child's tracked peak would be
        megabytes — the assertion pins it under 4x the store's largest
        shard, an order of magnitude below the whole store.
        """
        rng = np.random.default_rng(3)
        reads = [
            Read(f"x{i}", rng.integers(0, 4, 150).astype(np.uint8))
            for i in range(10_000)
        ]
        path = str(tmp_path / "big.store")
        pack_reads(iter(reads), path, shard_size=256)
        budget = 64 * 1024
        opened = ReadSet.open(path, cache_budget=budget)
        blob = pickle.dumps(opened)
        assert len(blob) < 512

        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_forked_scan, args=(blob, budget, child))
        proc.start()
        total, peak, evictions = parent.recv()
        proc.join(timeout=60)
        assert proc.exitcode == 0
        expected = sum(int(r.codes.sum()) for r in reads)
        assert total == expected
        store_bytes = 10_000 * 150
        assert peak < store_bytes // 4  # nowhere near a full materialization
        assert evictions > 0  # the 64 KiB budget really was enforced
