"""Sharded overlap and graph column stores round-trip exactly."""

import numpy as np
import pytest

from repro.align.overlap import PackedOverlaps
from repro.graph.overlap_graph import OverlapGraph
from repro.store import (
    ShardedGraph,
    ShardedOverlaps,
    pack_graph,
    pack_overlaps,
)


def packed(n, seed):
    rng = np.random.default_rng(seed)
    return PackedOverlaps(
        query=rng.integers(0, 100, n),
        ref=rng.integers(0, 100, n),
        q_start=rng.integers(0, 50, n),
        r_start=rng.integers(0, 50, n),
        length=rng.integers(50, 120, n),
        identity=rng.uniform(0.9, 1.0, n),
        kind_code=rng.integers(0, 3, n).astype(np.uint8),
    )


class TestShardedOverlaps:
    def test_rechunked_roundtrip(self, tmp_path):
        # Ragged input batches, fixed shard rows: 7 + 19 + 4 -> 8/8/8/6.
        batches = [packed(7, 1), packed(19, 2), packed(4, 3)]
        path = str(tmp_path / "ovl.store")
        manifest = pack_overlaps(iter(batches), path, shard_size=8)
        assert manifest.n_records == 30
        assert [s.n_records for s in manifest.shards] == [8, 8, 8, 6]
        store = ShardedOverlaps(path)
        merged = store.to_packed()
        want_q = np.concatenate([b.query for b in batches])
        want_id = np.concatenate([b.identity for b in batches])
        assert (merged.query == want_q).all()
        assert np.allclose(merged.identity, want_id)
        assert merged.kind_code.dtype == np.uint8

    def test_shard_batches_are_packed_overlaps(self, tmp_path):
        path = str(tmp_path / "ovl.store")
        pack_overlaps(iter([packed(10, 4)]), path, shard_size=4)
        store = ShardedOverlaps(path)
        sizes = [len(b) for b in store.iter_batches()]
        assert sizes == [4, 4, 2]
        assert isinstance(store.shard_batch(0), PackedOverlaps)

    def test_empty_stream(self, tmp_path):
        path = str(tmp_path / "ovl.store")
        manifest = pack_overlaps(iter([]), path, shard_size=4)
        assert manifest.n_records == 0
        assert len(ShardedOverlaps(path).to_packed()) == 0


def sample_graph(n_edges=23, n_nodes=40, with_deltas=True, seed=5):
    rng = np.random.default_rng(seed)
    return OverlapGraph(
        n_nodes,
        rng.integers(0, n_nodes, n_edges),
        rng.integers(0, n_nodes, n_edges),
        rng.uniform(1.0, 9.0, n_edges),
        node_weights=rng.integers(1, 5, n_nodes),
        deltas=rng.integers(-40, 40, n_edges) if with_deltas else None,
        identities=rng.uniform(0.9, 1.0, n_edges),
    )


class TestShardedGraph:
    def test_roundtrip(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "g.store")
        manifest = pack_graph(g, path, shard_size=5)
        assert manifest.n_records == g.n_edges
        store = ShardedGraph(path)
        assert store.n_edges == g.n_edges
        g2 = store.to_graph()
        assert g2.n_nodes == g.n_nodes
        assert (g2.eu == g.eu).all() and (g2.ev == g.ev).all()
        assert np.allclose(g2.weights, g.weights)
        assert (g2.deltas == g.deltas).all()
        assert np.allclose(g2.identities, g.identities)
        assert (g2.node_weights == g.node_weights).all()
        assert g2.has_deltas

    def test_roundtrip_without_deltas(self, tmp_path):
        g = sample_graph(with_deltas=False)
        path = str(tmp_path / "g.store")
        pack_graph(g, path, shard_size=5)
        assert not ShardedGraph(path).to_graph().has_deltas

    def test_edge_shards_stream_in_order(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "g.store")
        pack_graph(g, path, shard_size=10)
        eu = np.concatenate([s["eu"] for s in ShardedGraph(path).iter_edge_shards()])
        assert (eu == g.eu).all()

    def test_kind_mismatch_between_stores(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "g.store")
        pack_graph(g, path, shard_size=10)
        with pytest.raises(ValueError, match="holds 'graph'"):
            ShardedOverlaps(path)
