"""Tests for the generic shard writer/store and manifest validation."""

import json
import os

import numpy as np
import pytest

import repro.store.sharded as sharded_mod
from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.store import (
    MANIFEST_NAME,
    STORE_VERSION,
    ShardedStore,
    ShardWriter,
    StoreManifest,
    pack_reads,
    shard_name,
)


def write_store(path, n_shards=3, kind="reads"):
    writer = ShardWriter(path, kind=kind, shard_size=4)
    for i in range(n_shards):
        writer.write_shard(
            {"data": np.full(8, i, dtype=np.uint8)}, n_records=4
        )
    return writer.finalize()


class TestWriterRoundtrip:
    def test_shards_and_manifest(self, tmp_path):
        path = str(tmp_path / "store")
        manifest = write_store(path)
        assert manifest.n_shards == 3
        assert manifest.n_records == 12
        store = ShardedStore(path, kind="reads")
        assert store.n_shards == 3
        for i, payload in store.iter_shards():
            assert (payload["data"] == i).all()
            # Stamp keys are stripped from the served payload.
            assert "store_version" not in payload

    def test_record_starts_and_shard_of(self, tmp_path):
        path = str(tmp_path / "store")
        write_store(path)
        store = ShardedStore(path)
        assert store.record_starts.tolist() == [0, 4, 8, 12]
        assert store.shard_of(0) == 0
        assert store.shard_of(4) == 1
        assert store.shard_of(11) == 2
        with pytest.raises(IndexError):
            store.shard_of(12)

    def test_fresh_pack_clears_stale_files(self, tmp_path):
        path = str(tmp_path / "store")
        write_store(path, n_shards=3)
        write_store(path, n_shards=1)  # smaller re-pack, no resume
        store = ShardedStore(path)
        assert store.n_shards == 1
        assert not os.path.exists(os.path.join(path, shard_name(2)))


class TestValidation:
    def test_missing_manifest_mentions_resume(self, tmp_path):
        with pytest.raises(ValueError, match="resume=True"):
            StoreManifest.load(tmp_path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "store")
        write_store(path)
        mpath = os.path.join(path, MANIFEST_NAME)
        with open(mpath, encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["version"] = STORE_VERSION + 1
        with open(mpath, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError, match=f"version {STORE_VERSION + 1}"):
            ShardedStore(path)

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "store")
        write_store(path, kind="overlaps")
        with pytest.raises(ValueError, match="expected 'reads'"):
            ShardedStore(path, kind="reads")

    def test_corrupt_manifest_rejected(self, tmp_path):
        path = str(tmp_path / "store")
        write_store(path)
        with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
            fh.write("{not json")
        with pytest.raises(ValueError, match="corrupt store manifest"):
            ShardedStore(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = str(tmp_path / "store")
        os.makedirs(path)
        with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
            json.dump({"format": "something-else"}, fh)
        with pytest.raises(ValueError, match="not a store manifest"):
            ShardedStore(path)

    def test_shard_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "store")
        write_store(path)
        # Rewrite shard 1 with a wrong embedded store_version.
        spath = os.path.join(path, shard_name(1))
        with np.load(spath) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["store_version"] = np.int64(STORE_VERSION + 7)
        np.savez(spath, **arrays)
        store = ShardedStore(path)
        with pytest.raises(ValueError, match="shard version"):
            store.load_shard(1)

    def test_shard_swapped_between_stores_rejected(self, tmp_path):
        a = str(tmp_path / "a")
        b = str(tmp_path / "b")
        write_store(a)
        write_store(b)
        # Put b's shard 2 where a expects shard 1: the index stamp trips.
        os.replace(
            os.path.join(b, shard_name(2)), os.path.join(a, shard_name(1))
        )
        with pytest.raises(ValueError, match="shard"):
            ShardedStore(a).load_shard(1)


def some_reads(n):
    rng = np.random.default_rng(42)
    return [
        Read(f"r{i}", rng.integers(0, 4, 30 + (i % 7)).astype(np.uint8))
        for i in range(n)
    ]


class TestCrashMidPackResume:
    """A crash mid-pack leaves a resumable, never-corrupt directory."""

    @staticmethod
    def _crash_after(monkeypatch, n_shards):
        real = sharded_mod.atomic_savez
        written = []

        def exploding(final, compressed=False, **arrays):
            if len(written) >= n_shards:
                raise RuntimeError("simulated crash mid-pack")
            written.append(final)
            real(final, compressed=compressed, **arrays)

        monkeypatch.setattr(sharded_mod, "atomic_savez", exploding)

    def test_crashed_pack_has_no_manifest(self, tmp_path, monkeypatch):
        path = str(tmp_path / "store")
        self._crash_after(monkeypatch, 2)
        with pytest.raises(RuntimeError, match="simulated crash"):
            pack_reads(iter(some_reads(40)), path, shard_size=10)
        assert not os.path.exists(os.path.join(path, MANIFEST_NAME))
        with pytest.raises(ValueError, match="resume=True"):
            ShardedStore(path)

    def test_resume_reuses_intact_shards(self, tmp_path, monkeypatch):
        path = str(tmp_path / "store")
        reads = some_reads(40)
        self._crash_after(monkeypatch, 2)
        with pytest.raises(RuntimeError):
            pack_reads(iter(reads), path, shard_size=10)
        survivors = {
            name: os.stat(os.path.join(path, name)).st_mtime_ns
            for name in os.listdir(path)
            if name.startswith("shard-")
        }
        assert len(survivors) == 2
        monkeypatch.undo()
        pack_reads(iter(reads), path, shard_size=10, resume=True)
        # The surviving shards were verified and reused, not rewritten.
        for name, mtime in survivors.items():
            assert os.stat(os.path.join(path, name)).st_mtime_ns == mtime
        opened = ReadSet.open(path)
        assert len(opened) == 40
        for i, read in enumerate(reads):
            assert (opened.codes_of(i) == read.codes).all()

    def test_resume_rewrites_truncated_shard(self, tmp_path, monkeypatch):
        path = str(tmp_path / "store")
        reads = some_reads(40)
        self._crash_after(monkeypatch, 2)
        with pytest.raises(RuntimeError):
            pack_reads(iter(reads), path, shard_size=10)
        # Corrupt one survivor as a torn write would.
        victim = os.path.join(path, shard_name(1))
        with open(victim, "wb") as fh:
            fh.write(b"PK\x03\x04 torn")
        monkeypatch.undo()
        pack_reads(iter(reads), path, shard_size=10, resume=True)
        opened = ReadSet.open(path)
        assert (opened.codes_of(15) == reads[15].codes).all()

    def test_resume_on_clean_directory_is_a_full_pack(self, tmp_path):
        path = str(tmp_path / "store")
        manifest = pack_reads(
            iter(some_reads(12)), path, shard_size=5, resume=True
        )
        assert manifest.n_records == 12
