"""Tests for the byte-budgeted LRU shard cache."""

import pytest

from repro.store import ShardCache


def loader_of(value, nbytes):
    return lambda: (value, nbytes)


class TestLRUOrder:
    def test_eviction_is_least_recently_used_first(self):
        cache = ShardCache(budget_bytes=30)
        cache.put("a", "A", 10)
        cache.put("b", "B", 10)
        cache.put("c", "C", 10)
        # Touch "a" so "b" becomes the LRU entry.
        assert cache.get("a", loader_of(None, 0)) == "A"
        cache.put("d", "D", 10)
        assert "b" not in cache
        assert set(cache.keys()) == {"c", "a", "d"}

    def test_hit_moves_entry_to_mru(self):
        cache = ShardCache(budget_bytes=100)
        cache.put("a", "A", 1)
        cache.put("b", "B", 1)
        cache.get("a", loader_of(None, 0))
        assert cache.keys() == ["b", "a"]  # LRU first

    def test_refresh_updates_size_accounting(self):
        cache = ShardCache(budget_bytes=100)
        cache.put("a", "A", 10)
        cache.put("a", "A2", 30)
        assert cache.current_bytes == 30
        assert len(cache) == 1


class TestByteBudget:
    def test_interleaved_sizes_evict_until_under_budget(self):
        cache = ShardCache(budget_bytes=100)
        cache.put("small1", 1, 10)
        cache.put("big1", 2, 60)
        cache.put("small2", 3, 10)
        cache.put("big2", 4, 60)  # 140 total -> evict small1 (30 over), big1
        assert cache.current_bytes <= 100
        assert "small1" not in cache and "big1" not in cache
        assert "small2" in cache and "big2" in cache
        assert cache.stats().evictions == 2

    def test_lone_over_budget_entry_is_admitted(self):
        cache = ShardCache(budget_bytes=10)
        value = cache.get("huge", loader_of("X" * 50, 50))
        assert value == "X" * 50
        assert "huge" in cache  # progress beats purity
        cache.put("next", "Y", 5)
        assert "huge" not in cache  # but it goes first

    def test_zero_budget_retains_nothing(self):
        cache = ShardCache(budget_bytes=0)
        assert cache.get("a", loader_of("A", 10)) == "A"
        assert len(cache) == 0
        assert cache.current_bytes == 0
        # Every access is a miss: the loader runs again.
        calls = []

        def loader():
            calls.append(1)
            return "A", 10

        cache.get("a", loader)
        cache.get("a", loader)
        assert len(calls) == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ShardCache(budget_bytes=-1)

    def test_negative_nbytes_rejected(self):
        cache = ShardCache(budget_bytes=10)
        with pytest.raises(ValueError, match="non-negative"):
            cache.put("a", "A", -5)


class TestCounters:
    def test_hit_miss_eviction_counters(self):
        cache = ShardCache(budget_bytes=20)
        loads = []

        def loader(key):
            def load():
                loads.append(key)
                return key.upper(), 10

            return load

        cache.get("a", loader("a"))  # miss
        cache.get("a", loader("a"))  # hit
        cache.get("b", loader("b"))  # miss
        cache.get("c", loader("c"))  # miss -> evicts "a"
        cache.get("a", loader("a"))  # miss again -> evicts "b"
        s = cache.stats()
        assert (s.hits, s.misses, s.evictions) == (1, 4, 2)
        assert s.entries == 2
        assert s.current_bytes == 20
        assert s.budget_bytes == 20
        assert s.hit_rate == pytest.approx(1 / 5)
        assert loads == ["a", "b", "c", "a"]

    def test_stats_to_dict_roundtrip(self):
        cache = ShardCache(budget_bytes=5)
        d = cache.stats().to_dict()
        assert d["hit_rate"] == 0.0
        assert set(d) == {
            "hits",
            "misses",
            "evictions",
            "entries",
            "current_bytes",
            "budget_bytes",
            "hit_rate",
        }

    def test_invalidate_and_clear(self):
        cache = ShardCache(budget_bytes=100)
        cache.put("a", "A", 10)
        cache.put("b", "B", 10)
        cache.invalidate("a")
        assert "a" not in cache and cache.current_bytes == 10
        cache.invalidate("missing")  # no-op
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
