"""Tests for link building and scaffolding."""

import numpy as np
import pytest

from repro.scaffold.links import ContigLink, build_links, estimate_insert_size
from repro.scaffold.scaffolder import Scaffold, ScaffoldConfig, Scaffolder
from repro.sequence.dna import N, decode, reverse_complement
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


@pytest.fixture(scope="module")
def world():
    """A genome cut into 3 known contigs with 300bp gaps + mate pairs."""
    genome = Genome("g", random_genome(12_000, np.random.default_rng(31)))
    cuts = [(0, 3_500), (3_800, 7_300), (7_600, 11_800)]
    contigs = [genome.codes[a:b].copy() for a, b in cuts]
    sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=10, seed=31, flat_error_rate=0.0))
    reads = sim.simulate_paired(genome, insert_size=800, insert_sd=40)
    return genome, cuts, contigs, reads


class TestBuildLinks:
    def test_adjacent_contigs_linked(self, world):
        _, _, contigs, reads = world
        links = build_links(reads, contigs, min_pairs=3)
        keyed = {(l.a, l.b): l for l in links}
        assert (0, 1) in keyed and (1, 2) in keyed
        assert (0, 2) not in keyed  # 800bp insert cannot span 3800bp

    def test_orientations_all_forward(self, world):
        _, _, contigs, reads = world
        links = build_links(reads, contigs, min_pairs=3)
        for l in links:
            assert (l.a_orient, l.b_orient) == ("+", "+")

    def test_gap_estimates_close(self, world):
        _, cuts, contigs, reads = world
        links = build_links(reads, contigs, min_pairs=3)
        keyed = {(l.a, l.b): l for l in links}
        assert keyed[(0, 1)].gap == pytest.approx(300, abs=120)
        assert keyed[(1, 2)].gap == pytest.approx(300, abs=120)

    def test_reversed_contig_orientation_detected(self, world):
        _, _, contigs, reads = world
        flipped = [contigs[0], reverse_complement(contigs[1]), contigs[2]]
        links = build_links(reads, flipped, min_pairs=3)
        keyed = {(l.a, l.b): l for l in links}
        assert keyed[(0, 1)].b_orient == "-"
        assert keyed[(0, 1)].a_orient == "+"
        assert keyed[(1, 2)].a_orient == "-"

    def test_min_pairs_filters(self, world):
        _, _, contigs, reads = world
        links = build_links(reads, contigs, min_pairs=10_000)
        assert links == []

    def test_no_pairs_no_links(self, world):
        from repro.io.readset import ReadSet

        _, _, contigs, _ = world
        assert build_links(ReadSet.from_strings(["ACGT" * 30]), contigs) == []

    def test_canonical_involution(self):
        link = ContigLink(a=5, a_orient="-", b=2, b_orient="+", n_pairs=4, gap=10.0)
        canon = link.canonical()
        assert canon.a == 2 and canon.b == 5
        assert canon.a_orient == "-" and canon.b_orient == "+"
        assert canon.canonical() == canon


class TestEstimateInsertSize:
    def test_recovers_simulated_insert(self, world):
        _, _, contigs, reads = world
        from repro.scaffold.links import pair_indices, place_reads

        pairs = pair_indices(reads)
        placements = place_reads(reads, contigs)
        est = estimate_insert_size(placements, pairs, 100)
        assert est == pytest.approx(800, abs=60)

    def test_fallback_when_no_internal_pairs(self):
        assert estimate_insert_size([], [], 100, fallback=321.0) == 321.0


class TestScaffolder:
    def test_recovers_order_and_gaps(self, world):
        _, _, contigs, reads = world
        scaffolds, links = Scaffolder().scaffold(reads, contigs)
        assert len(scaffolds) == 1
        sc = scaffolds[0]
        assert [c for c, _ in sc.parts] == [0, 1, 2]
        assert all(o == "+" for _, o in sc.parts)
        assert all(150 <= g <= 450 for g in sc.gaps)

    def test_recovers_reversed_contig(self, world):
        _, _, contigs, reads = world
        flipped = [contigs[0], reverse_complement(contigs[1]), contigs[2]]
        scaffolds, _ = Scaffolder().scaffold(reads, flipped)
        assert len(scaffolds) == 1
        orients = dict(scaffolds[0].parts)
        # scaffold read left-to-right or right-to-left: contig 1 must be
        # flipped relative to its neighbours either way
        assert orients[1] != orients[0]
        assert orients[0] == orients[2]

    def test_scaffold_sequence_matches_genome_shape(self, world):
        genome, cuts, contigs, reads = world
        scaffolds, _ = Scaffolder().scaffold(reads, contigs)
        seq = scaffolds[0].sequence(contigs)
        total_contig = sum(c.size for c in contigs)
        assert seq.size > total_contig  # gaps inserted
        assert (seq == N).sum() == sum(scaffolds[0].gaps)
        # contig bodies appear verbatim
        assert decode(contigs[0]) in decode(seq).replace("N", "n").upper()

    def test_unlinked_contigs_become_singletons(self, world):
        _, _, contigs, reads = world
        alien = random_genome(2_000, np.random.default_rng(77))
        scaffolds, _ = Scaffolder().scaffold(reads, contigs + [alien])
        sizes = sorted(s.n_contigs for s in scaffolds)
        assert sizes == [1, 3]

    def test_empty_contigs(self, world):
        _, _, _, reads = world
        scaffolds, links = Scaffolder().scaffold(reads, [])
        assert scaffolds == [] and links == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScaffoldConfig(min_pairs=0)
        with pytest.raises(ValueError):
            ScaffoldConfig(min_gap=0)

    def test_scaffold_record_validation(self):
        with pytest.raises(ValueError):
            Scaffold(parts=[(0, "+"), (1, "+")], gaps=[])

    def test_end_to_end_with_focus_assembly(self):
        # sparse single-end coverage fragments the assembly; paired
        # reads then stitch the contigs into scaffolds
        from repro import AssemblyConfig, FocusAssembler
        from repro.mpi.timing import CommCostModel

        genome = Genome("g", random_genome(8_000, np.random.default_rng(41)))
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=10, seed=41))
        reads = sim.simulate_genome(genome)
        result = FocusAssembler(
            AssemblyConfig(n_partitions=2), cost_model=CommCostModel(alpha=1e-6)
        ).assemble(reads)
        pairs = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=6, seed=42, flat_error_rate=0.0)
        ).simulate_paired(genome, insert_size=900, insert_sd=50)
        scaffolds, _ = Scaffolder().scaffold(pairs, result.contigs)
        assert sum(s.n_contigs for s in scaffolds) == len(result.contigs)
        # scaffolding should not *increase* the number of sequences
        assert len(scaffolds) <= len(result.contigs)
