"""Tests for paired-end read simulation."""

import numpy as np
import pytest

from repro.scaffold.links import pair_indices
from repro.sequence.dna import reverse_complement
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


@pytest.fixture
def genome():
    return Genome("g", random_genome(10_000, np.random.default_rng(5)))


def simulate_pairs(genome, **kw):
    cfg = ReadSimConfig(read_length=100, coverage=6, seed=5, flat_error_rate=0.0)
    return ReadSimulator(cfg).simulate_paired(genome, **kw)


class TestSimulatePaired:
    def test_pair_count(self, genome):
        reads = simulate_pairs(genome, n_pairs=50)
        assert len(reads) == 100

    def test_coverage_derived_count(self, genome):
        reads = simulate_pairs(genome)
        # coverage 6, 10kb genome, 2x100bp per pair -> 300 pairs
        assert len(reads) == 600

    def test_fr_orientation_ground_truth(self, genome):
        reads = simulate_pairs(genome, n_pairs=30)
        for i in range(0, len(reads), 2):
            m1, m2 = reads.meta[i], reads.meta[i + 1]
            assert m1["pair"] == m2["pair"]
            assert (m1["mate"], m2["mate"]) == (1, 2)
            start, flen = m1["fragment_start"], m1["fragment_length"]
            fwd = genome.codes[start : start + 100]
            rev = genome.codes[start + flen - 100 : start + flen]
            assert (reads.codes_of(i) == fwd).all()
            assert (reads.codes_of(i + 1) == reverse_complement(rev)).all()

    def test_insert_size_distribution(self, genome):
        reads = simulate_pairs(genome, insert_size=400, insert_sd=20, n_pairs=300)
        lengths = [reads.meta[i]["fragment_length"] for i in range(0, len(reads), 2)]
        assert np.mean(lengths) == pytest.approx(400, abs=10)
        assert 5 < np.std(lengths) < 40

    def test_ids_carry_mates(self, genome):
        reads = simulate_pairs(genome, n_pairs=3)
        assert reads.ids[0].endswith("/1")
        assert reads.ids[1].endswith("/2")

    def test_insert_too_small_rejected(self, genome):
        with pytest.raises(ValueError, match="insert_size"):
            simulate_pairs(genome, insert_size=50)

    def test_genome_too_short_rejected(self):
        tiny = Genome("t", random_genome(300, np.random.default_rng(1)))
        with pytest.raises(ValueError, match="too short"):
            simulate_pairs(tiny, insert_size=290)


class TestPairIndices:
    def test_matches_simulated_pairs(self, genome):
        reads = simulate_pairs(genome, n_pairs=20)
        pairs = pair_indices(reads)
        assert len(pairs) == 20
        for i1, i2 in pairs:
            assert reads.meta[i1]["mate"] == 1
            assert reads.meta[i2]["mate"] == 2
            assert reads.meta[i1]["pair"] == reads.meta[i2]["pair"]

    def test_unpaired_reads_ignored(self):
        from repro.io.readset import ReadSet

        rs = ReadSet.from_strings(["ACGT" * 30, "TTTT" * 30])
        assert pair_indices(rs) == []
