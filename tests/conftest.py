"""Repository-wide test configuration.

Hypothesis deadlines are disabled: property tests share the machine
with benchmark runs and simulated-cluster threads, and wall-clock
deadlines turn load spikes into spurious failures.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
