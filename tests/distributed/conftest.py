"""Fixtures for distributed-algorithm tests."""

import numpy as np
import pytest

from repro.distributed.dgraph import DistributedAssemblyGraph, HybridAssembly
from repro.graph.coarsen import CoarsenConfig, build_multilevel_set
from repro.graph.hybrid import build_hybrid_set
from repro.graph.overlap_graph import OverlapGraph
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.simulate.genome import random_genome
from tests.graph.conftest import graph_from_reads, tiled_readset

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def make_assembly(contigs, edges):
    """Build a HybridAssembly from explicit contigs and (u, v, delta) edges.

    Edge weight is the implied contig overlap (>=1).
    """
    lengths = np.array([c.size for c in contigs], dtype=np.int64)
    if edges:
        eu = np.array([e[0] for e in edges], dtype=np.int64)
        ev = np.array([e[1] for e in edges], dtype=np.int64)
        d = np.array([e[2] for e in edges], dtype=np.int64)
        ov = np.minimum(lengths[eu], d + lengths[ev]) - np.maximum(0, d)
        w = np.maximum(ov, 1).astype(np.float64)
    else:
        eu = ev = d = np.empty(0, dtype=np.int64)
        w = np.empty(0, dtype=np.float64)
    graph = OverlapGraph(len(contigs), eu, ev, w, deltas=d)
    clusters = [np.array([i], dtype=np.int64) for i in range(len(contigs))]
    return HybridAssembly(graph=graph, contigs=list(contigs), clusters=clusters)


def chain_assembly(n=6, contig_len=120, step=60, seed=0):
    """n contigs tiling a genome left to right, adjacent overlaps only."""
    rng = np.random.default_rng(seed)
    genome = random_genome(step * (n - 1) + contig_len, rng)
    contigs = [genome[i * step : i * step + contig_len] for i in range(n)]
    edges = [(i, i + 1, step) for i in range(n - 1)]
    return make_assembly(contigs, edges), genome


def dag_of(assembly, labels):
    return DistributedAssemblyGraph(assembly, np.asarray(labels, dtype=np.int64))


def run_on_cluster(fn, dag, n_parts, **kw):
    # sanitize=True: every distributed-algorithm test also proves the
    # collectives are free of mutate-after-send races and message leaks.
    cluster = SimCluster(n_parts, cost_model=FAST, deadlock_timeout=30.0, sanitize=True)
    results, stats = cluster.run(fn, dag, **kw)
    return results, stats


@pytest.fixture(scope="module")
def pipeline_graphs():
    """Realistic end-to-end structures from tiled reads."""
    reads, genome = tiled_readset(genome_len=2400, stride=30, seed=5)
    g0 = graph_from_reads(reads)
    mls = build_multilevel_set(g0, CoarsenConfig(min_nodes=6, seed=5))
    hyb = build_hybrid_set(mls, reads.lengths)
    return reads, genome, g0, mls, hyb
