"""Tests for distributed transitive reduction and containment removal."""

import numpy as np
import pytest

from repro.distributed.containment import containment_removal, find_containments
from repro.distributed.transitive import find_transitive_edges, transitive_reduction
from repro.sequence.dna import decode
from repro.simulate.genome import random_genome
from tests.distributed.conftest import chain_assembly, dag_of, make_assembly, run_on_cluster


def triangle_assembly(seed=0):
    """Three tiling contigs where 0->2 is transitive through 1."""
    rng = np.random.default_rng(seed)
    genome = random_genome(220, rng)
    contigs = [genome[0:100], genome[60:160], genome[120:220]]
    edges = [(0, 1, 60), (1, 2, 60), (0, 2, 120)]
    return make_assembly(contigs, edges), genome


class TestTransitiveReduction:
    def test_detects_triangle(self):
        asm, _ = triangle_assembly()
        dag = dag_of(asm, [0, 0, 0])
        edges = find_transitive_edges(dag, np.array([0, 1, 2]))
        assert len(set(edges)) == 1
        g = dag.graph
        e = edges[0]
        assert {int(g.eu[e]), int(g.ev[e])} == {0, 2}

    def test_chain_has_no_transitive(self):
        asm, _ = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        assert find_transitive_edges(dag, np.arange(6)) == []

    def test_distributed_run_removes(self):
        asm, _ = triangle_assembly()
        dag = dag_of(asm, [0, 1, 1])
        results, stats = run_on_cluster(transitive_reduction, dag, 2)
        assert results == [1, 1]  # both ranks learn the removal count
        assert dag.n_alive_edges == 2
        assert stats.elapsed > 0

    def test_cross_partition_edge_recorded_once_effectively(self):
        asm, _ = triangle_assembly()
        # transitive edge 0-2 crosses partitions 0|1: both may record it
        dag = dag_of(asm, [0, 0, 1])
        results, _ = run_on_cluster(transitive_reduction, dag, 2)
        assert results[0] == 1

    def test_respects_tolerance(self):
        asm, _ = triangle_assembly()
        dag = dag_of(asm, [0, 0, 0])
        # with tolerance 0 the exact deltas still match (60 + 60 = 120)
        assert len(find_transitive_edges(dag, np.arange(3), tolerance=0)) == 1


class TestContainment:
    def make_contained(self):
        rng = np.random.default_rng(3)
        genome = random_genome(200, rng)
        contigs = [genome[0:150], genome[20:90]]  # 1 contained in 0
        edges = [(0, 1, 20)]
        return make_assembly(contigs, edges), genome

    def test_detects_contained_node(self):
        asm, _ = self.make_contained()
        dag = dag_of(asm, [0, 0])
        nodes, edges = find_containments(dag, np.array([0, 1]))
        assert nodes == [1]
        assert edges == []

    def test_short_overlap_edge_flagged(self):
        rng = np.random.default_rng(4)
        genome = random_genome(300, rng)
        contigs = [genome[0:100], genome[80:180]]  # 20bp overlap < 50
        asm = make_assembly(contigs, [(0, 1, 80)])
        dag = dag_of(asm, [0, 0])
        nodes, edges = find_containments(dag, np.array([0, 1]))
        assert nodes == []
        # both endpoints may record the same crossing edge (paper §V-A);
        # the master deduplicates
        assert len(set(edges)) == 1

    def test_identity_guard(self):
        rng = np.random.default_rng(5)
        genome = random_genome(200, rng)
        inner = random_genome(70, np.random.default_rng(99))  # unrelated
        contigs = [genome[0:150], inner]
        asm = make_assembly(contigs, [(0, 1, 20)])
        dag = dag_of(asm, [0, 0])
        nodes, _ = find_containments(dag, np.array([0, 1]))
        assert nodes == []  # interval says contained, sequence says no

    def test_distributed_run(self):
        asm, _ = self.make_contained()
        dag = dag_of(asm, [0, 1])
        results, _ = run_on_cluster(containment_removal, dag, 2)
        assert results[0] == (1, 0)
        assert not dag.node_alive[1]

    def test_chain_untouched(self):
        asm, _ = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        nodes, edges = find_containments(dag, np.arange(6))
        assert nodes == [] and edges == []
