"""Tests for dead-end trimming, bubble popping, and traversal."""

import numpy as np
import pytest

from repro.distributed.traversal import (
    contigs_from_paths,
    extract_subpaths,
    join_subpaths,
    maximal_paths,
)
from repro.distributed.trimming import (
    find_bubbles,
    find_dead_ends,
    pop_bubbles,
    trim_dead_ends,
)
from repro.sequence.dna import decode
from repro.simulate.genome import random_genome
from tests.distributed.conftest import chain_assembly, dag_of, make_assembly, run_on_cluster


def spur_assembly():
    """Backbone 0-1-2-3 (200bp contigs) with a short spur 4 off node 1."""
    rng = np.random.default_rng(7)
    genome = random_genome(500, rng)
    contigs = [genome[0:200], genome[100:300], genome[200:400], genome[300:500],
               random_genome(60, rng)]
    edges = [(0, 1, 100), (1, 2, 100), (2, 3, 100), (1, 4, 30)]
    return make_assembly(contigs, edges), genome


def bubble_assembly():
    """v(0) - {a(1), b(2)} - w(3) with a longer than b."""
    rng = np.random.default_rng(8)
    genome = random_genome(260, rng)
    contigs = [genome[0:100], genome[60:180], genome[60:150], genome[140:240]]
    edges = [(0, 1, 60), (0, 2, 60), (1, 3, 80), (2, 3, 80)]
    return make_assembly(contigs, edges), genome


class TestDeadEnds:
    def test_spur_detected(self):
        asm, _ = spur_assembly()
        dag = dag_of(asm, [0] * 5)
        assert find_dead_ends(dag, np.arange(5)) == [4]

    def test_backbone_tips_not_removed(self):
        # chain ends are degree-1 but lead into degree-2 nodes, never a
        # junction, so nothing is trimmed
        asm, _ = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        assert find_dead_ends(dag, np.arange(6)) == []

    def test_long_spur_kept(self):
        asm, _ = spur_assembly()
        dag = dag_of(asm, [0] * 5)
        # threshold below the spur's 60bp contig: nothing is short enough
        assert find_dead_ends(dag, np.arange(5), max_tip_bases=50) == []

    def test_backbone_end_never_trimmed(self):
        asm, _ = spur_assembly()
        dag = dag_of(asm, [0] * 5)
        # even a generous threshold keeps the 200bp backbone ends
        found = find_dead_ends(dag, np.arange(5), max_tip_bases=150)
        assert 0 not in found and 3 not in found

    def test_distributed_run(self):
        asm, _ = spur_assembly()
        dag = dag_of(asm, [0, 0, 1, 1, 1])
        results, stats = run_on_cluster(trim_dead_ends, dag, 2)
        assert results == [1, 1]
        assert not dag.node_alive[4]
        assert stats.elapsed > 0


class TestBubbles:
    def test_bubble_pops_shorter_branch(self):
        asm, _ = bubble_assembly()
        dag = dag_of(asm, [0] * 4)
        # branch 2 (90bp) is shorter than branch 1 (120bp)
        assert find_bubbles(dag, np.array([0])) == [2]

    def test_no_bubble_in_chain(self):
        asm, _ = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        assert find_bubbles(dag, np.arange(6)) == []

    def test_distributed_run(self):
        asm, _ = bubble_assembly()
        dag = dag_of(asm, [0, 0, 1, 1])
        results, _ = run_on_cluster(pop_bubbles, dag, 2)
        assert results[0] == 1
        assert not dag.node_alive[2]
        # after popping, the graph is a clean chain 0-1-3
        assert dag.alive_degree(0) == 1
        assert dag.alive_degree(3) == 1


class TestTraversal:
    def test_single_partition_full_path(self):
        asm, genome = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        visited = np.zeros(6, dtype=bool)
        paths = extract_subpaths(dag, 0, visited)
        assert len(paths) == 1
        assert paths[0] == [0, 1, 2, 3, 4, 5] or paths[0] == [5, 4, 3, 2, 1, 0]

    def test_partition_boundary_splits_then_joins(self):
        asm, _ = chain_assembly()
        dag = dag_of(asm, [0, 0, 0, 1, 1, 1])
        visited = np.zeros(6, dtype=bool)
        sub0 = extract_subpaths(dag, 0, visited)
        sub1 = extract_subpaths(dag, 1, visited)
        assert len(sub0) == 1 and len(sub1) == 1
        joined = join_subpaths(dag, sub0 + sub1)
        assert len(joined) == 1
        assert joined[0] == [0, 1, 2, 3, 4, 5]

    def test_junction_stops_path(self):
        asm, _ = spur_assembly()
        dag = dag_of(asm, [0] * 5)
        visited = np.zeros(5, dtype=bool)
        paths = extract_subpaths(dag, 0, visited)
        # node 1 has two out-edges (to 2 and 4): no single path spans all
        assert all(len(p) < 5 for p in paths)

    def test_distributed_traversal_matches_serial(self):
        asm, _ = chain_assembly(n=8)
        for parts in ([0] * 8, [0] * 4 + [1] * 4, [0, 0, 1, 1, 2, 2, 3, 3]):
            dag = dag_of(asm, parts)
            k = max(parts) + 1
            results, _ = run_on_cluster(maximal_paths, dag, k)
            assert results[0] is not None
            assert sorted(len(p) for p in results[0]) == [8]

    def test_contigs_from_paths_reconstruct_genome(self):
        asm, genome = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        visited = np.zeros(6, dtype=bool)
        paths = extract_subpaths(dag, 0, visited)
        contigs = contigs_from_paths(dag, paths)
        assert len(contigs) == 1
        assert decode(contigs[0]) == decode(genome)

    def test_single_node_path_contig(self):
        asm, _ = chain_assembly(n=2)
        dag = dag_of(asm, [0, 0])
        contigs = contigs_from_paths(dag, [[0]])
        assert decode(contigs[0]) == decode(asm.contigs[0])

    def test_invalid_path_step_raises(self):
        asm, _ = chain_assembly(n=3)
        dag = dag_of(asm, [0] * 3)
        with pytest.raises(ValueError, match="no alive edge"):
            contigs_from_paths(dag, [[0, 2]])
