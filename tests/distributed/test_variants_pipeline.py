"""End-to-end variant detection: divergent locus -> bubble -> calls."""

import numpy as np
import pytest

from repro import AssemblyConfig, FocusAssembler
from repro.distributed.variants import detect_variants
from repro.io.readset import ReadSet
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.simulate.genome import Genome, mutate, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


@pytest.fixture(scope="module")
def divergent_sample():
    rng = np.random.default_rng(99)
    allele_a = random_genome(12_000, rng)
    allele_b = allele_a.copy()
    allele_b[5_000:5_400] = mutate(allele_a[5_000:5_400], 0.30, rng)
    sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=12, seed=99))
    reads_a = sim.simulate_genome(Genome("alleleA", allele_a))
    reads_b = sim.simulate_genome(Genome("alleleB", allele_b), id_prefix="alleleB")
    pooled = ReadSet(list(reads_a) + list(reads_b))
    n_true = int((allele_a != allele_b).sum())
    assembler = FocusAssembler(
        AssemblyConfig(n_partitions=4, run_trimming=False), cost_model=FAST
    )
    result = assembler.assemble(pooled)
    return allele_a, allele_b, n_true, result


class TestVariantPipeline:
    def test_divergent_locus_forms_bubble_and_calls(self, divergent_sample):
        a, b, n_true, result = divergent_sample
        cluster = SimCluster(4, cost_model=FAST)
        results, _ = cluster.run(detect_variants, result.dag, max_variants_per_bubble=300)
        calls = results[0]
        snvs = [v for v in calls if v.kind == "snv"]
        # Most of the planted differences are recovered (the bubble
        # boundary excludes the window's outermost bases).
        assert len(snvs) > 0.5 * n_true
        # All calls are genuine single-base differences.
        for v in snvs:
            assert v.ref_allele != v.alt_allele

    def test_calls_match_planted_alleles(self, divergent_sample):
        a, b, _, result = divergent_sample
        from repro.sequence.dna import decode

        cluster = SimCluster(4, cost_model=FAST)
        results, _ = cluster.run(detect_variants, result.dag, max_variants_per_bubble=300)
        snvs = [v for v in results[0] if v.kind == "snv"]
        if not snvs:
            pytest.skip("no bubble this seed")
        # Each (ref, alt) base pair must occur at some genome position
        # where the alleles differ with exactly those bases (in either
        # orientation - the branch contigs may be reverse complements).
        diff_pos = np.flatnonzero(a != b)
        pairs = {(decode(a[p : p + 1]), decode(b[p : p + 1])) for p in diff_pos}
        pairs |= {(y, x) for x, y in pairs}
        from repro.sequence.dna import reverse_complement

        rc_pairs = {
            (decode(reverse_complement(a[p : p + 1])), decode(reverse_complement(b[p : p + 1])))
            for p in diff_pos
        }
        pairs |= rc_pairs | {(y, x) for x, y in rc_pairs}
        matching = sum(1 for v in snvs if (v.ref_allele, v.alt_allele) in pairs)
        assert matching > 0.9 * len(snvs)

    def test_homozygous_sample_has_no_calls(self):
        rng = np.random.default_rng(7)
        genome = Genome("g", random_genome(6_000, rng))
        reads = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=10, seed=7)
        ).simulate_genome(genome)
        assembler = FocusAssembler(
            AssemblyConfig(n_partitions=2, run_trimming=False), cost_model=FAST
        )
        result = assembler.assemble(reads)
        cluster = SimCluster(2, cost_model=FAST)
        results, _ = cluster.run(detect_variants, result.dag)
        assert results[0] == []
