"""Tests for distributed variant detection (the paper's named extension)."""

import numpy as np
import pytest

from repro.distributed.variants import Variant, detect_variants, find_bubble_variants
from repro.sequence.dna import decode, encode
from repro.simulate.genome import random_genome
from tests.distributed.conftest import chain_assembly, dag_of, make_assembly, run_on_cluster


def snv_bubble_assembly(n_snvs=2, seed=12):
    """v(0) - {ref(1), alt(2)} - w(3): branches differ by n_snvs SNVs."""
    rng = np.random.default_rng(seed)
    genome = random_genome(320, rng)
    ref_branch = genome[60:200].copy()
    alt_branch = ref_branch.copy()
    positions = np.linspace(20, ref_branch.size - 20, n_snvs).astype(int)
    for p in positions:
        alt_branch[p] = (alt_branch[p] + 1) % 4
    contigs = [genome[0:100], ref_branch, alt_branch, genome[160:280]]
    edges = [(0, 1, 60), (0, 2, 60), (1, 3, 100), (2, 3, 100)]
    return make_assembly(contigs, edges), positions


def indel_bubble_assembly(seed=13):
    rng = np.random.default_rng(seed)
    genome = random_genome(320, rng)
    ref_branch = genome[60:200].copy()
    alt_branch = np.delete(ref_branch, np.arange(70, 75))  # 5bp deletion
    contigs = [genome[0:100], ref_branch, alt_branch, genome[160:280]]
    edges = [(0, 1, 60), (0, 2, 60), (1, 3, 100), (2, 3, 95)]
    return make_assembly(contigs, edges), None


class TestFindBubbleVariants:
    def test_snvs_called_at_right_positions(self):
        asm, positions = snv_bubble_assembly(n_snvs=3)
        dag = dag_of(asm, [0] * 4)
        variants = find_bubble_variants(dag, np.arange(4))
        snvs = [v for v in variants if v.kind == "snv"]
        assert sorted(v.position for v in snvs) == sorted(positions.tolist())
        for v in snvs:
            assert v.ref_allele != v.alt_allele
            assert {v.ref_node, v.alt_node} == {1, 2}

    def test_indel_called(self):
        asm, _ = indel_bubble_assembly()
        dag = dag_of(asm, [0] * 4)
        variants = find_bubble_variants(dag, np.arange(4))
        assert any(v.kind == "indel" for v in variants)
        indel = next(v for v in variants if v.kind == "indel")
        assert indel.ref_node == 1  # longer branch is the reference

    def test_clean_chain_no_variants(self):
        asm, _ = chain_assembly()
        dag = dag_of(asm, [0] * 6)
        assert find_bubble_variants(dag, np.arange(6)) == []

    def test_identical_branches_no_variants(self):
        asm, _ = snv_bubble_assembly(n_snvs=0)
        dag = dag_of(asm, [0] * 4)
        assert find_bubble_variants(dag, np.arange(4)) == []

    def test_too_divergent_bubble_discarded(self):
        # branches of unrelated sequence: a repeat artifact, not alleles
        rng = np.random.default_rng(14)
        genome = random_genome(320, rng)
        contigs = [genome[0:100], genome[60:200], random_genome(140, rng), genome[160:280]]
        asm = make_assembly(contigs, [(0, 1, 60), (0, 2, 60), (1, 3, 100), (2, 3, 100)])
        dag = dag_of(asm, [0] * 4)
        variants = find_bubble_variants(dag, np.arange(4), max_variants_per_bubble=20)
        assert variants == []

    def test_bubble_reported_once(self):
        asm, _ = snv_bubble_assembly(n_snvs=1)
        dag = dag_of(asm, [0] * 4)
        # anchors 0 and 3 both see the bubble, but within one worker's
        # scan the branch pair is deduplicated
        variants = find_bubble_variants(dag, np.array([0, 3]))
        assert len(variants) == 1


class TestDetectVariants:
    def test_distributed_run_merges_and_dedupes(self):
        asm, positions = snv_bubble_assembly(n_snvs=2)
        dag = dag_of(asm, [0, 0, 1, 1])
        results, stats = run_on_cluster(detect_variants, dag, 2)
        assert results[0] == results[1]
        snvs = [v for v in results[0] if v.kind == "snv"]
        assert sorted(v.position for v in snvs) == sorted(positions.tolist())
        assert stats.elapsed > 0

    def test_sorted_output(self):
        asm, _ = snv_bubble_assembly(n_snvs=3)
        dag = dag_of(asm, [0] * 4)
        results, _ = run_on_cluster(detect_variants, dag, 1)
        calls = results[0]
        keys = [(v.ref_node, v.alt_node, v.position) for v in calls]
        assert keys == sorted(keys)

    def test_variant_record_fields(self):
        v = Variant(0, 1, 2, 10, "snv", "A", "C")
        assert v.ref_allele == "A" and v.alt_allele == "C"
