"""Property tests: loop and sparse finish kernels propose identical sets.

The sparse engine's whole contract (docs/performance.md) is that it is
a *drop-in* for the scalar reference: for any graph, any alive-mask
state, and any partitioning, each stage's sparse kernel must propose
exactly the removals the loop kernel proposes.  Hypothesis drives the
four kernel pairs over randomized genome-sliced assemblies with random
dead nodes/edges; a chaos smoke then proves fault injection composes
with the sparse engine end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.distributed.containment import containment_kernel, containment_sparse_kernel
from repro.distributed.transitive import transitive_kernel, transitive_sparse_kernel
from repro.distributed.trimming import (
    bubble_kernel,
    bubble_sparse_kernel,
    dead_end_kernel,
    dead_end_sparse_kernel,
)
from repro.faults import FaultPlan, KernelFault, RetryPolicy
from repro.parallel.backend import BACKEND_NAMES
from repro.simulate.genome import random_genome

from tests.distributed.conftest import dag_of, make_assembly

GENOME_LEN = 400


@st.composite
def masked_dags(draw):
    """A random genome-sliced assembly with random masks and labels.

    Contigs are true slices of one genome and edge deltas are the true
    offset differences (with occasional jitter), so transitive chains,
    containments, tips, and bubbles all actually occur; random kill
    masks then exercise the kernels' alive-filtering paths.
    """
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.integers(min_value=2, max_value=24))
    rng = np.random.default_rng(seed)
    genome = random_genome(GENOME_LEN, rng)
    lengths = rng.integers(20, 121, size=n)
    offsets = rng.integers(0, GENOME_LEN - 120, size=n)
    contigs = [genome[o : o + ln] for o, ln in zip(offsets, lengths)]

    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            lo = max(offsets[u], offsets[v])
            hi = min(offsets[u] + lengths[u], offsets[v] + lengths[v])
            if hi - lo <= 0 or rng.random() < 0.4:
                continue
            jitter = int(rng.integers(-3, 4)) if rng.random() < 0.2 else 0
            edges.append((u, v, int(offsets[v] - offsets[u]) + jitter))
    assembly = make_assembly(contigs, edges)

    k = draw(st.sampled_from([1, 2, 4]))
    dag = dag_of(assembly, rng.integers(0, k, size=n))
    dag.node_alive &= rng.random(n) > 0.1
    dag.edge_alive &= rng.random(assembly.graph.eu.size) > 0.1
    return dag


def assert_same_proposals(dag, loop_kernel, sparse_kernel, **params):
    # Set equality: the loop kernels may propose an id twice (seen
    # from two anchors of one partition); union_proposals dedups at
    # merge time, so duplicates are not an observable difference.
    for part in range(dag.n_parts):
        got_loop = loop_kernel(dag, part, **params)
        got_sparse = sparse_kernel(dag, part, **params)
        if not isinstance(got_loop, tuple):
            got_loop, got_sparse = (got_loop,), (got_sparse,)
        for a, b in zip(got_loop, got_sparse):
            np.testing.assert_array_equal(np.unique(a), np.unique(b))


class TestKernelEquivalence:
    @given(dag=masked_dags(), tolerance=st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_transitive(self, dag, tolerance):
        assert_same_proposals(
            dag, transitive_kernel, transitive_sparse_kernel, tolerance=tolerance
        )

    @given(
        dag=masked_dags(),
        min_overlap=st.integers(min_value=1, max_value=80),
        min_identity=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_containment(self, dag, min_overlap, min_identity):
        assert_same_proposals(
            dag,
            containment_kernel,
            containment_sparse_kernel,
            min_overlap=min_overlap,
            min_identity=min_identity,
        )

    @given(dag=masked_dags(), max_tip_bases=st.integers(min_value=20, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_dead_ends(self, dag, max_tip_bases):
        assert_same_proposals(
            dag, dead_end_kernel, dead_end_sparse_kernel, max_tip_bases=max_tip_bases
        )

    @given(dag=masked_dags())
    @settings(max_examples=40, deadline=None)
    def test_bubbles(self, dag):
        assert_same_proposals(dag, bubble_kernel, bubble_sparse_kernel)


class TestSparseChaosSmoke:
    """Fault injection composes with the sparse engine: the faulted
    sparse run on every backend recovers contigs byte-identical to the
    fault-free loop run."""

    PLAN = FaultPlan(
        kernel_faults=(
            KernelFault("error", "transitive", 0),
            KernelFault("crash", "bubbles", 1),
        ),
        hang_seconds=0.5,
    )
    POLICY = RetryPolicy(
        max_attempts=3, backoff_base=0.0, backoff_cap=0.0, task_deadline=5.0
    )

    @pytest.fixture(scope="class")
    def prep_and_baseline(self):
        from repro.simulate.genome import Genome
        from repro.simulate.reads import ReadSimConfig, ReadSimulator

        g = Genome("g", random_genome(5000, np.random.default_rng(11)))
        reads = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=10, seed=11)
        ).simulate_genome(g)
        assembler = FocusAssembler(AssemblyConfig(backend_workers=2))
        prep = assembler.prepare(reads)
        baseline = assembler.finish(
            prep, n_partitions=4, backend="serial", engine="loop"
        )
        return prep, sorted(c.tobytes() for c in baseline.contigs)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_faulted_sparse_matches_loop_baseline(self, prep_and_baseline, backend):
        prep, baseline = prep_and_baseline
        chaos = FocusAssembler(
            AssemblyConfig(
                backend_workers=2,
                retry=self.POLICY,
                fault_plan=self.PLAN,
                finish_engine="sparse",
            )
        )
        result = chaos.finish(prep, n_partitions=4, backend=backend)
        assert sorted(c.tobytes() for c in result.contigs) == baseline, backend
        assert result.engine == "sparse"
        report = result.fault_report
        assert report is not None and report.total_injected >= 1


@pytest.mark.slow
class TestEngineMatrixSlow:
    """Exhaustive backend x engine byte-identity on a larger assembly."""

    def test_all_cells_agree(self):
        from repro.bench.datasets import FinishScaleSpec, build_finish_assembly
        from repro.bench.finish_bench import _contig_key, _run_scale_cell

        scale = build_finish_assembly(
            FinishScaleSpec(name="Sslow", backbone=4000, seed=77)
        )
        labels = scale.labels(8)
        keys = []
        for backend in BACKEND_NAMES:
            for engine in ("loop", "sparse"):
                _, _, contigs = _run_scale_cell(scale, labels, backend, engine, 0)
                keys.append(_contig_key(contigs))
        assert all(key == keys[0] for key in keys[1:])
