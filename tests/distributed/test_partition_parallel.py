"""Tests for the SimCluster-driven parallel partitioning (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro.distributed.partition_parallel import parallel_partition_graph_set
from repro.graph.coarsen import CoarsenConfig, MultilevelGraphSet, build_multilevel_set
from repro.mpi.timing import CommCostModel
from repro.partition.metrics import edge_cut
from repro.partition.recursive import PartitionConfig
from tests.partition.conftest import random_weighted_graph, ring_of_cliques

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def config(seed=0):
    return PartitionConfig(coarsen=CoarsenConfig(min_nodes=8, seed=seed), seed=seed)


@pytest.fixture(scope="module")
def mls():
    g = random_weighted_graph(150, 0.05, seed=10)
    return build_multilevel_set(g, CoarsenConfig(min_nodes=10, seed=10))


class TestParallelPartition:
    def test_valid_labels(self, mls):
        labels, stats = parallel_partition_graph_set(mls, 4, 2, config(), FAST)
        assert labels.size == mls.base.n_nodes
        assert set(labels.tolist()) <= set(range(4))
        assert stats.elapsed > 0

    def test_labels_independent_of_rank_count(self, mls):
        l1, _ = parallel_partition_graph_set(mls, 4, 1, config(), FAST)
        l2, _ = parallel_partition_graph_set(mls, 4, 2, config(), FAST)
        l4, _ = parallel_partition_graph_set(mls, 4, 4, config(), FAST)
        assert np.array_equal(l1, l2)
        assert np.array_equal(l1, l4)

    def test_quality_on_structured_graph(self):
        g = ring_of_cliques(n_cliques=4, n_each=8)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=8, seed=1))
        labels, _ = parallel_partition_graph_set(mls, 4, 2, config(1), FAST)
        # near-ideal cut: the 4 light ring bridges (allow one clique edge)
        assert edge_cut(g, labels) <= 14.0

    def test_compute_spread_over_ranks(self, mls):
        _, stats = parallel_partition_graph_set(mls, 8, 4, config(), FAST)
        busy = [c for c in stats.compute_times if c > 0]
        assert len(busy) >= 2  # work actually landed on multiple ranks

    def test_invalid_k(self, mls):
        with pytest.raises(ValueError):
            parallel_partition_graph_set(mls, 3, 2, config(), FAST)

    def test_k1(self, mls):
        labels, _ = parallel_partition_graph_set(mls, 1, 2, config(), FAST)
        assert (labels == 0).all()
