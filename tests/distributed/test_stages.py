"""Kernel/merge split: registry, proposal merging, kernel purity."""

import numpy as np
import pytest

from repro.distributed.containment import containment_kernel, find_containments
from repro.distributed.stages import (
    StageSpec,
    all_stages,
    get_stage,
    register_stage,
    run_stage_on_comm,
    union_proposals,
)
from repro.distributed.transitive import find_transitive_edges, transitive_kernel
from repro.distributed.traversal import (
    extract_subpaths,
    pack_paths,
    subpath_kernel,
    unpack_paths,
)
from repro.distributed.trimming import dead_end_kernel, find_dead_ends
from tests.distributed.conftest import chain_assembly, dag_of, run_on_cluster


class TestRegistry:
    def test_all_standard_stages_registered(self):
        names = {s.name for s in all_stages()}
        assert {"transitive", "containment", "dead_ends", "bubbles", "traversal"} <= names

    def test_get_stage_returns_spec(self):
        spec = get_stage("transitive")
        assert isinstance(spec, StageSpec)
        assert spec.name == "transitive"
        assert callable(spec.kernel) and callable(spec.merge)

    def test_unknown_stage_raises_with_known_names(self):
        with pytest.raises(KeyError, match="traversal"):
            get_stage("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_stage("transitive", lambda *a: None, lambda *a: None)  # noqa: ARCH002 - duplicate-name probe


class TestUnionProposals:
    def test_dedupes_and_sorts(self):
        out = union_proposals(
            [np.array([3, 1]), np.array([1, 2]), np.empty(0, dtype=np.int64)]
        )
        assert out.tolist() == [1, 2, 3]
        assert out.dtype == np.int64

    def test_empty_input(self):
        assert union_proposals([]).size == 0


class TestPackPaths:
    def test_roundtrip(self):
        paths = [[0, 1, 2], [5], [], [7, 8]]
        flat, lens = pack_paths(paths)
        assert flat.dtype == np.int64 and lens.dtype == np.int64
        assert unpack_paths(flat, lens) == paths

    def test_empty(self):
        flat, lens = pack_paths([])
        assert unpack_paths(flat, lens) == []


@pytest.fixture(scope="module")
def chain_dag():
    assembly, _ = chain_assembly(n=6)
    labels = [0, 0, 0, 1, 1, 1]
    return dag_of(assembly, labels)


class TestKernelsMatchScans:
    """Kernels return exactly what the per-partition scans find."""

    def test_transitive_kernel(self, chain_dag):
        for part in range(2):
            nodes = chain_dag.partition_nodes(part)
            expect = sorted(find_transitive_edges(chain_dag, nodes, tolerance=2))
            got = transitive_kernel(chain_dag, part, tolerance=2)
            assert sorted(got.tolist()) == expect

    def test_containment_kernel(self, chain_dag):
        for part in range(2):
            nodes = chain_dag.partition_nodes(part)
            exp_nodes, exp_edges = find_containments(
                chain_dag, nodes, min_overlap=50, min_identity=0.9
            )
            got_nodes, got_edges = containment_kernel(
                chain_dag, part, min_overlap=50, min_identity=0.9
            )
            assert sorted(got_nodes.tolist()) == sorted(exp_nodes)
            assert sorted(got_edges.tolist()) == sorted(exp_edges)

    def test_dead_end_kernel(self, chain_dag):
        for part in range(2):
            nodes = chain_dag.partition_nodes(part)
            expect = sorted(find_dead_ends(chain_dag, nodes, max_tip_bases=150))
            got = dead_end_kernel(chain_dag, part, max_tip_bases=150)
            assert sorted(got.tolist()) == expect

    def test_subpath_kernel_packs_extract(self, chain_dag):
        for part in range(2):
            visited = np.zeros(chain_dag.graph.n_nodes, dtype=bool)
            expect = extract_subpaths(chain_dag, part, visited)
            flat, lens = subpath_kernel(chain_dag, part)
            assert unpack_paths(flat, lens) == expect

    def test_kernels_do_not_mutate(self, chain_dag):
        node_before = chain_dag.node_alive.copy()
        edge_before = chain_dag.edge_alive.copy()
        transitive_kernel(chain_dag, 0, tolerance=2)
        containment_kernel(chain_dag, 0, min_overlap=50, min_identity=0.9)
        dead_end_kernel(chain_dag, 0, max_tip_bases=150)
        subpath_kernel(chain_dag, 0)
        assert (chain_dag.node_alive == node_before).all()
        assert (chain_dag.edge_alive == edge_before).all()

    def test_kernel_proposals_are_picklable(self, chain_dag):
        import pickle

        flat, lens = subpath_kernel(chain_dag, 0)
        blob = pickle.dumps((flat, lens))
        back_flat, back_lens = pickle.loads(blob)
        assert (back_flat == flat).all() and (back_lens == lens).all()


class TestRunStageOnComm:
    def test_matches_serial_merge(self):
        assembly, _ = chain_assembly(n=6)
        labels = [0, 0, 0, 1, 1, 1]
        spec = get_stage("transitive")

        serial_dag = dag_of(assembly, labels)
        proposals = [spec.kernel(serial_dag, p, tolerance=2) for p in range(2)]
        expect = spec.merge(serial_dag, proposals, tolerance=2)

        sim_dag = dag_of(assembly, labels)
        results, _ = run_on_cluster(
            lambda comm, dag: run_stage_on_comm(comm, spec, dag, tolerance=2),
            sim_dag,
            2,
        )
        assert all(r == expect for r in results)
        assert (sim_dag.edge_alive == serial_dag.edge_alive).all()
