"""Unit + integration tests for the distributed assembly graph."""

import numpy as np
import pytest

from repro.distributed.dgraph import DistributedAssemblyGraph, enrich_hybrid
from repro.sequence.dna import decode
from tests.distributed.conftest import chain_assembly, dag_of, make_assembly


class TestEnrichHybrid:
    def test_contigs_cover_genome(self, pipeline_graphs):
        reads, genome, g0, mls, hyb = pipeline_graphs
        asm = enrich_hybrid(hyb, g0, reads)
        assert len(asm.contigs) == hyb.hybrid.n_nodes
        genome_str = decode(genome)
        for c in asm.contigs:
            assert decode(c) in genome_str  # consensus is error-free here

    def test_deltas_match_genome_offsets(self, pipeline_graphs):
        reads, genome, g0, mls, hyb = pipeline_graphs
        asm = enrich_hybrid(hyb, g0, reads)
        genome_str = decode(genome)
        pos = [genome_str.find(decode(c)) for c in asm.contigs]
        g = asm.graph
        for e in range(g.n_edges):
            u, v = int(g.eu[e]), int(g.ev[e])
            assert int(g.deltas[e]) == pos[v] - pos[u]

    def test_weights_are_overlaps(self, pipeline_graphs):
        reads, genome, g0, mls, hyb = pipeline_graphs
        asm = enrich_hybrid(hyb, g0, reads)
        g = asm.graph
        lengths = asm.contig_lengths
        for e in range(g.n_edges):
            u, v, d = int(g.eu[e]), int(g.ev[e]), int(g.deltas[e])
            expect = min(lengths[u], d + lengths[v]) - max(0, d)
            assert g.weights[e] == max(expect, 1)

    def test_contig_lengths(self):
        asm, _ = chain_assembly()
        assert (asm.contig_lengths == 120).all()


class TestDistributedAssemblyGraph:
    def test_partition_nodes(self):
        asm, _ = chain_assembly(n=6)
        dag = dag_of(asm, [0, 0, 0, 1, 1, 1])
        assert dag.partition_nodes(0).tolist() == [0, 1, 2]
        assert dag.partition_nodes(1).tolist() == [3, 4, 5]
        assert dag.n_parts == 2

    def test_labels_validation(self):
        asm, _ = chain_assembly(n=3)
        with pytest.raises(ValueError):
            DistributedAssemblyGraph(asm, np.array([0, 1]))
        with pytest.raises(ValueError):
            DistributedAssemblyGraph(asm, np.array([0, -1, 0]))

    def test_out_in_edges(self):
        asm, _ = chain_assembly(n=3)
        dag = dag_of(asm, [0, 0, 0])
        # node 1 has an in-edge from 0 and out-edge to 2
        out_n, _ = dag.out_edges(1)
        in_n, _ = dag.in_edges(1)
        assert out_n.tolist() == [2]
        assert in_n.tolist() == [0]

    def test_remove_edges(self):
        asm, _ = chain_assembly(n=3)
        dag = dag_of(asm, [0, 0, 0])
        _, eids = dag.alive_incident(0)
        assert dag.remove_edges(eids.tolist()) == 1
        assert dag.alive_degree(0) == 0
        assert dag.n_alive_edges == 1

    def test_remove_nodes_kills_incident_edges(self):
        asm, _ = chain_assembly(n=3)
        dag = dag_of(asm, [0, 0, 0])
        assert dag.remove_nodes([1]) == 1
        assert dag.alive_degree(0) == 0
        assert dag.alive_degree(2) == 0
        assert dag.n_alive_nodes == 2
        assert dag.n_alive_edges == 0

    def test_remove_idempotent(self):
        asm, _ = chain_assembly(n=3)
        dag = dag_of(asm, [0, 0, 0])
        assert dag.remove_nodes([1]) == 1
        assert dag.remove_nodes([1]) == 0

    def test_remove_empty(self):
        asm, _ = chain_assembly(n=3)
        dag = dag_of(asm, [0, 0, 0])
        assert dag.remove_nodes([]) == 0
        assert dag.remove_edges([]) == 0
