"""Unit tests for 2-way Kernighan-Lin refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.kl import edge_weight_between, kl_refine_bisection
from repro.partition.metrics import edge_cut, partition_node_weights
from tests.partition.conftest import random_weighted_graph, two_cliques


class TestEdgeWeightBetween:
    def test_present(self):
        g = OverlapGraph(3, np.array([0, 1]), np.array([1, 2]), np.array([5.0, 7.0]))
        assert edge_weight_between(g, 0, 1) == 5.0
        assert edge_weight_between(g, 2, 1) == 7.0

    def test_absent(self):
        g = OverlapGraph(3, np.array([0]), np.array([1]), np.array([5.0]))
        assert edge_weight_between(g, 0, 2) == 0.0


class TestKlRefine:
    def test_fixes_swapped_cliques(self):
        g = two_cliques(n_each=6)
        # Start from a deliberately bad bisection: one node swapped each way.
        labels = np.array([0] * 6 + [1] * 6)
        labels[0], labels[6] = 1, 0
        refined, gain = kl_refine_bisection(g, labels)
        assert edge_cut(g, refined) == 1.0
        assert gain > 0

    def test_optimal_input_untouched(self):
        g = two_cliques(n_each=6)
        labels = np.array([0] * 6 + [1] * 6)
        refined, gain = kl_refine_bisection(g, labels)
        assert (refined == labels).all()
        assert gain == 0.0

    def test_preserves_part_sizes(self):
        g = random_weighted_graph(30, 0.3, seed=2)
        labels = (np.arange(30) % 2).astype(np.int64)
        refined, _ = kl_refine_bisection(g, labels)
        assert partition_node_weights(g, refined, 2).tolist() == [15, 15]

    def test_never_worsens_cut(self):
        for seed in range(5):
            g = random_weighted_graph(40, 0.2, seed=seed)
            labels = (np.random.default_rng(seed).random(40) < 0.5).astype(np.int64)
            refined, _ = kl_refine_bisection(g, labels)
            assert edge_cut(g, refined) <= edge_cut(g, labels) + 1e-9

    def test_gain_matches_cut_delta(self):
        g = random_weighted_graph(30, 0.3, seed=3)
        labels = (np.arange(30) % 2).astype(np.int64)
        refined, gain = kl_refine_bisection(g, labels)
        assert gain == pytest.approx(edge_cut(g, labels) - edge_cut(g, refined))

    def test_input_not_mutated(self):
        g = two_cliques()
        labels = np.array([0] * 8 + [1] * 8)
        labels[0], labels[8] = 1, 0
        snapshot = labels.copy()
        kl_refine_bisection(g, labels)
        assert (labels == snapshot).all()

    def test_empty_graph(self):
        g = OverlapGraph(0, np.array([]), np.array([]), np.array([]))
        refined, gain = kl_refine_bisection(g, np.array([], dtype=np.int64))
        assert refined.size == 0 and gain == 0.0

    def test_rejects_bad_labels(self):
        g = two_cliques()
        with pytest.raises(ValueError):
            kl_refine_bisection(g, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            kl_refine_bisection(g, np.full(16, 2, dtype=np.int64))

    def test_one_sided_partition_no_crash(self):
        g = two_cliques(n_each=4)
        labels = np.zeros(8, dtype=np.int64)  # everything in part 0
        refined, gain = kl_refine_bisection(g, labels)
        assert gain == 0.0  # no pairs to swap

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=30), st.integers(min_value=0, max_value=500))
    def test_cut_monotone_property(self, n, seed):
        g = random_weighted_graph(n, 0.3, seed)
        rng = np.random.default_rng(seed)
        labels = (rng.random(n) < 0.5).astype(np.int64)
        refined, gain = kl_refine_bisection(g, labels)
        assert edge_cut(g, refined) <= edge_cut(g, labels) + 1e-9
        assert gain >= 0
