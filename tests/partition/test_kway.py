"""Unit tests for global k-way Kernighan-Lin refinement."""

import numpy as np
import pytest

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.kway import kway_refine
from repro.partition.metrics import edge_cut, node_weight_balance
from tests.partition.conftest import random_weighted_graph, ring_of_cliques


class TestKwayRefine:
    def test_fixes_misplaced_nodes(self):
        g = ring_of_cliques(n_cliques=4, n_each=6)
        labels = np.repeat(np.arange(4), 6)
        # Misplace one node from each clique into the next part.
        bad = labels.copy()
        for c in range(4):
            bad[c * 6] = (c + 1) % 4
        refined, gain = kway_refine(g, bad, k=4)
        assert edge_cut(g, refined) <= edge_cut(g, bad)
        assert gain > 0
        assert edge_cut(g, refined) == edge_cut(g, labels)

    def test_optimal_untouched(self):
        g = ring_of_cliques()
        labels = np.repeat(np.arange(4), 6)
        refined, gain = kway_refine(g, labels, k=4)
        assert edge_cut(g, refined) == edge_cut(g, labels)
        assert gain == 0.0

    def test_never_worsens(self):
        for seed in range(5):
            g = random_weighted_graph(40, 0.2, seed)
            labels = np.random.default_rng(seed).integers(0, 4, size=40)
            refined, _ = kway_refine(g, labels, k=4)
            assert edge_cut(g, refined) <= edge_cut(g, labels) + 1e-9

    def test_balance_rule_respected(self):
        g = random_weighted_graph(40, 0.3, seed=7)
        labels = np.random.default_rng(7).integers(0, 4, size=40)
        before = node_weight_balance(g, labels, 4)
        refined, _ = kway_refine(g, labels, k=4, balance=1.03)
        # The rule blocks moves into already-over-heavy parts, so the
        # refinement cannot blow up the imbalance arbitrarily.
        after = node_weight_balance(g, refined, 4)
        assert after <= max(before, 1.5) + 0.5

    def test_input_not_mutated(self):
        g = ring_of_cliques()
        labels = np.repeat(np.arange(4), 6)
        labels[0] = 1
        snapshot = labels.copy()
        kway_refine(g, labels, k=4)
        assert (labels == snapshot).all()

    def test_gain_matches_cut_delta(self):
        g = random_weighted_graph(36, 0.25, seed=9)
        labels = np.random.default_rng(9).integers(0, 3, size=36)
        refined, gain = kway_refine(g, labels, k=3)
        assert gain == pytest.approx(edge_cut(g, labels) - edge_cut(g, refined))

    def test_two_parts_matches_problem(self):
        g = random_weighted_graph(20, 0.4, seed=11)
        labels = np.random.default_rng(11).integers(0, 2, size=20)
        refined, _ = kway_refine(g, labels, k=2)
        assert edge_cut(g, refined) <= edge_cut(g, labels)

    def test_empty_graph(self):
        g = OverlapGraph(0, np.array([]), np.array([]), np.array([]))
        refined, gain = kway_refine(g, np.array([], dtype=np.int64))
        assert refined.size == 0 and gain == 0.0

    def test_bad_inputs(self):
        g = ring_of_cliques()
        with pytest.raises(ValueError):
            kway_refine(g, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            kway_refine(g, np.zeros(24, dtype=np.int64), balance=0.5)

    def test_single_part_noop(self):
        g = ring_of_cliques()
        refined, gain = kway_refine(g, np.zeros(24, dtype=np.int64), k=1)
        assert gain == 0.0
        assert (refined == 0).all()
