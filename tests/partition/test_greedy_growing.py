"""Unit tests for greedy graph growing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.greedy_growing import greedy_grow_bisection
from repro.partition.metrics import edge_cut, partition_node_weights
from tests.partition.conftest import random_weighted_graph, two_cliques


class TestGreedyGrowBisection:
    def test_all_nodes_assigned(self):
        g = random_weighted_graph(40, 0.2, seed=0)
        labels = greedy_grow_bisection(g, np.random.default_rng(0))
        assert set(labels.tolist()) <= {0, 1}
        assert (labels >= 0).all()

    def test_roughly_balanced(self):
        g = random_weighted_graph(60, 0.15, seed=1)
        labels = greedy_grow_bisection(g, np.random.default_rng(1))
        nw = partition_node_weights(g, labels, 2)
        assert nw.min() >= 0.3 * g.total_node_weight

    def test_two_cliques_found(self):
        g = two_cliques(n_each=10)
        best_cut = min(
            edge_cut(g, greedy_grow_bisection(g, np.random.default_rng(seed)))
            for seed in range(5)
        )
        # Growing from a random seed inside a clique should peel off one
        # clique before touching the bridge in at least one of 5 tries.
        assert best_cut == 1.0

    def test_empty_graph(self):
        g = OverlapGraph(0, np.array([]), np.array([]), np.array([]))
        assert greedy_grow_bisection(g, np.random.default_rng(0)).size == 0

    def test_single_node(self):
        g = OverlapGraph(1, np.array([]), np.array([]), np.array([]))
        assert greedy_grow_bisection(g, np.random.default_rng(0)).tolist() == [0]

    def test_two_nodes(self):
        g = OverlapGraph(2, np.array([0]), np.array([1]), np.array([5.0]))
        labels = greedy_grow_bisection(g, np.random.default_rng(0))
        assert sorted(labels.tolist()) == [0, 1]

    def test_disconnected_components(self):
        # two disjoint edges; growing must reseed across components
        g = OverlapGraph(4, np.array([0, 2]), np.array([1, 3]), np.array([1.0, 1.0]))
        labels = greedy_grow_bisection(g, np.random.default_rng(0))
        assert set(labels.tolist()) == {0, 1}
        assert partition_node_weights(g, labels, 2).tolist() == [2, 2]

    def test_isolated_nodes(self):
        g = OverlapGraph(5, np.array([0]), np.array([1]), np.array([1.0]))
        labels = greedy_grow_bisection(g, np.random.default_rng(3))
        assert (labels >= 0).all()

    def test_invalid_balance(self):
        g = two_cliques()
        with pytest.raises(ValueError):
            greedy_grow_bisection(g, np.random.default_rng(0), edge_balance=0.9)

    def test_weighted_nodes_balanced_by_weight(self):
        # one heavy node should sit alone against many light ones
        g = OverlapGraph(
            5,
            np.array([0, 0, 0, 0]),
            np.array([1, 2, 3, 4]),
            np.array([1.0, 1.0, 1.0, 1.0]),
            node_weights=np.array([4, 1, 1, 1, 1]),
        )
        labels = greedy_grow_bisection(g, np.random.default_rng(0))
        nw = partition_node_weights(g, labels, 2)
        assert nw.max() <= 6  # not everything in one part

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
    def test_never_leaves_unassigned(self, n, seed):
        g = random_weighted_graph(n, 0.2, seed)
        labels = greedy_grow_bisection(g, np.random.default_rng(seed))
        assert (labels >= 0).all() and (labels <= 1).all()
