"""Shared graph builders for partition tests."""

import numpy as np
import pytest

from repro.graph.overlap_graph import OverlapGraph


def two_cliques(n_each=8, bridge_weight=1.0, clique_weight=10.0):
    """Two dense cliques joined by one light bridge edge — the canonical
    partitioning testcase (ideal cut = bridge_weight)."""
    eu, ev, w = [], [], []
    for base in (0, n_each):
        for i in range(n_each):
            for j in range(i + 1, n_each):
                eu.append(base + i)
                ev.append(base + j)
                w.append(clique_weight)
    eu.append(n_each - 1)
    ev.append(n_each)
    w.append(bridge_weight)
    return OverlapGraph(2 * n_each, np.array(eu), np.array(ev), np.array(w, dtype=np.float64))


def ring_of_cliques(n_cliques=4, n_each=6, bridge_weight=1.0, clique_weight=10.0):
    """n cliques joined in a ring by light bridges (good k-way testcase)."""
    eu, ev, w = [], [], []
    for c in range(n_cliques):
        base = c * n_each
        for i in range(n_each):
            for j in range(i + 1, n_each):
                eu.append(base + i)
                ev.append(base + j)
                w.append(clique_weight)
    for c in range(n_cliques):
        a = c * n_each + n_each - 1
        b = ((c + 1) % n_cliques) * n_each
        eu.append(a)
        ev.append(b)
        w.append(bridge_weight)
    return OverlapGraph(
        n_cliques * n_each, np.array(eu), np.array(ev), np.array(w, dtype=np.float64)
    )


def random_weighted_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p]
    if not pairs:
        pairs = [(0, 1)]
    eu = np.array([a for a, _ in pairs])
    ev = np.array([b for _, b in pairs])
    w = rng.integers(1, 50, size=len(pairs)).astype(np.float64)
    return OverlapGraph(n, eu, ev, w)
