"""Unit tests for partition metrics."""

import numpy as np
import pytest

from repro.graph.overlap_graph import OverlapGraph
from repro.partition.metrics import (
    edge_cut,
    edge_cut_fraction,
    internal_external_weights,
    node_weight_balance,
    partition_edge_weights,
    partition_node_weights,
)


def square_graph():
    # 4-cycle 0-1-2-3-0 with weights 1,2,3,4
    return OverlapGraph(
        4, np.array([0, 1, 2, 0]), np.array([1, 2, 3, 3]), np.array([1.0, 2.0, 3.0, 4.0])
    )


class TestEdgeCut:
    def test_cut_two_sides(self):
        g = square_graph()
        labels = np.array([0, 0, 1, 1])
        # crossing edges: (1,2) w=2 and (0,3) w=4
        assert edge_cut(g, labels) == 6.0

    def test_single_part_zero(self):
        assert edge_cut(square_graph(), np.zeros(4, dtype=int)) == 0.0

    def test_all_separate(self):
        g = square_graph()
        assert edge_cut(g, np.arange(4)) == 10.0

    def test_fraction(self):
        g = square_graph()
        assert edge_cut_fraction(g, np.array([0, 0, 1, 1])) == pytest.approx(0.6)

    def test_fraction_empty_graph(self):
        g = OverlapGraph(2, np.array([]), np.array([]), np.array([]))
        assert edge_cut_fraction(g, np.array([0, 1])) == 0.0

    def test_bad_labels(self):
        with pytest.raises(ValueError):
            edge_cut(square_graph(), np.array([0, 1]))
        with pytest.raises(ValueError):
            edge_cut(square_graph(), np.array([0, 1, -1, 0]))


class TestWeights:
    def test_node_weights(self):
        g = square_graph()
        assert partition_node_weights(g, np.array([0, 0, 1, 1])).tolist() == [2, 2]

    def test_node_weights_explicit_k(self):
        g = square_graph()
        assert partition_node_weights(g, np.zeros(4, dtype=int), k=3).tolist() == [4, 0, 0]

    def test_edge_weights_internal(self):
        g = square_graph()
        ew = partition_edge_weights(g, np.array([0, 0, 1, 1]))
        assert ew.tolist() == [1.0, 3.0]

    def test_balance_perfect(self):
        g = square_graph()
        assert node_weight_balance(g, np.array([0, 0, 1, 1])) == 1.0

    def test_balance_skewed(self):
        g = square_graph()
        assert node_weight_balance(g, np.array([0, 0, 0, 1])) == pytest.approx(1.5)


class TestInternalExternal:
    def test_values(self):
        g = square_graph()
        labels = np.array([0, 0, 1, 1])
        internal, external = internal_external_weights(g, labels)
        # node 0: internal (0,1)=1; external (0,3)=4
        assert internal[0] == 1.0 and external[0] == 4.0
        # node 2: internal (2,3)=3; external (1,2)=2
        assert internal[2] == 3.0 and external[2] == 2.0

    def test_sum_identity(self):
        g = square_graph()
        labels = np.array([0, 1, 0, 1])
        internal, external = internal_external_weights(g, labels)
        assert internal.sum() + external.sum() == pytest.approx(2 * g.total_edge_weight)
        assert external.sum() / 2 == pytest.approx(edge_cut(g, labels))
