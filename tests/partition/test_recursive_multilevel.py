"""Integration tests for recursive bisection and graph-set partitioning."""

import numpy as np
import pytest

from repro.graph.coarsen import CoarsenConfig, build_multilevel_set
from repro.graph.hybrid import build_hybrid_set
from repro.partition.metrics import edge_cut, edge_cut_fraction, node_weight_balance
from repro.partition.multilevel import (
    partition_via_hybrid,
    partition_via_multilevel,
)
from repro.partition.recursive import PartitionConfig, recursive_bisection
from tests.graph.conftest import graph_from_reads, tiled_readset
from tests.partition.conftest import random_weighted_graph, ring_of_cliques, two_cliques


def small_config(seed=0):
    return PartitionConfig(coarsen=CoarsenConfig(min_nodes=8, seed=seed), seed=seed)


class TestRecursiveBisection:
    def test_k_must_be_power_of_two(self):
        g = two_cliques()
        with pytest.raises(ValueError):
            recursive_bisection(g, 3)
        with pytest.raises(ValueError):
            recursive_bisection(g, 0)

    def test_k1_trivial(self):
        g = two_cliques()
        assert (recursive_bisection(g, 1) == 0).all()

    def test_k2_two_cliques(self):
        g = two_cliques(n_each=12)
        labels = recursive_bisection(g, 2, small_config())
        assert edge_cut(g, labels) == 1.0

    def test_k4_ring_of_cliques(self):
        g = ring_of_cliques(n_cliques=4, n_each=8)
        labels = recursive_bisection(g, 4, small_config())
        assert len(set(labels.tolist())) == 4
        # Ideal cut = 4 bridges; accept near-ideal.
        assert edge_cut(g, labels) <= 3 * 10.0 + 4.0

    def test_labels_in_range(self):
        g = random_weighted_graph(60, 0.1, seed=4)
        labels = recursive_bisection(g, 8, small_config(4))
        assert set(labels.tolist()) <= set(range(8))

    def test_task_records_counts(self):
        g = random_weighted_graph(80, 0.08, seed=5)
        tasks = []
        recursive_bisection(g, 8, small_config(5), tasks=tasks)
        bisects = [t for t in tasks if t.kind == "bisect"]
        assert len(bisects) == 1 + 2 + 4
        assert sorted({t.step for t in bisects}) == [0, 1, 2]
        assert all(t.duration >= 0 for t in tasks)

    def test_balance_reasonable(self):
        g = random_weighted_graph(128, 0.06, seed=6)
        labels = recursive_bisection(g, 4, small_config(6))
        assert node_weight_balance(g, labels, 4) <= 1.6


class TestGraphSetPartitioning:
    @pytest.fixture(scope="class")
    def assembled(self):
        reads, genome = tiled_readset(genome_len=3000, stride=20, seed=2)
        g0 = graph_from_reads(reads)
        mls = build_multilevel_set(g0, CoarsenConfig(min_nodes=8, seed=2))
        hyb = build_hybrid_set(mls, reads.lengths)
        return reads, g0, mls, hyb

    def test_multilevel_partition(self, assembled):
        _, g0, mls, _ = assembled
        res = partition_via_multilevel(mls, 4, small_config())
        assert res.labels_g0.size == g0.n_nodes
        assert len(set(res.labels_g0.tolist())) == 4
        assert res.cut_g0 == edge_cut(g0, res.labels_g0)

    def test_hybrid_partition_projects_to_g0(self, assembled):
        _, g0, mls, hyb = assembled
        res = partition_via_hybrid(mls, hyb, 4, small_config())
        assert res.labels_finest.size == hyb.hybrid.n_nodes
        assert res.labels_g0.size == g0.n_nodes
        # Every hybrid cluster lands in exactly one part.
        for cluster in hyb.clusters_of_hybrid():
            assert len(set(res.labels_g0[cluster].tolist())) == 1

    def test_hybrid_cut_is_small_fraction(self, assembled):
        _, g0, mls, hyb = assembled
        res = partition_via_hybrid(mls, hyb, 4, small_config())
        # Paper: cuts never exceeded 0.43% of total edge weight; our
        # small linear datasets should also cut only a tiny fraction.
        assert edge_cut_fraction(g0, res.labels_g0) < 0.1

    def test_hybrid_faster_than_multilevel(self, assembled):
        _, _, mls, hyb = assembled
        cfg = small_config()
        t_h = partition_via_hybrid(mls, hyb, 4, cfg).wall_time
        t_m = partition_via_multilevel(mls, 4, cfg).wall_time
        # The headline claim (Fig. 5): hybrid partitioning is faster.
        # Allow slack on tiny test graphs.
        assert t_h < 2.0 * t_m

    def test_tasks_recorded(self, assembled):
        _, _, mls, hyb = assembled
        res = partition_via_hybrid(mls, hyb, 4, small_config())
        kinds = {t.kind for t in res.tasks}
        assert kinds == {"bisect", "kway"}
        kway_tasks = [t for t in res.tasks if t.kind == "kway"]
        assert len(kway_tasks) == hyb.n_levels
