"""Hypothesis property tests on partitioning invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.coarsen import CoarsenConfig
from repro.partition.kl import kl_refine_bisection
from repro.partition.kway import kway_refine
from repro.partition.metrics import edge_cut, partition_node_weights
from repro.partition.recursive import PartitionConfig, recursive_bisection
from tests.partition.conftest import random_weighted_graph


def config(seed):
    return PartitionConfig(coarsen=CoarsenConfig(min_nodes=6, seed=seed), seed=seed)


class TestRecursiveBisectionProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=8, max_value=60),
        st.sampled_from([2, 4, 8]),
        st.integers(min_value=0, max_value=200),
    )
    def test_labels_complete_and_in_range(self, n, k, seed):
        g = random_weighted_graph(n, 0.2, seed)
        labels = recursive_bisection(g, k, config(seed))
        assert labels.size == n
        assert labels.min() >= 0 and labels.max() < k

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=16, max_value=60), st.integers(min_value=0, max_value=100))
    def test_all_parts_nonempty_when_feasible(self, n, seed):
        g = random_weighted_graph(n, 0.3, seed)
        labels = recursive_bisection(g, 4, config(seed))
        counts = partition_node_weights(g, labels, 4)
        assert (counts > 0).all()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=10, max_value=40), st.integers(min_value=0, max_value=100))
    def test_cut_bounded_by_total(self, n, seed):
        g = random_weighted_graph(n, 0.3, seed)
        labels = recursive_bisection(g, 4, config(seed))
        assert 0.0 <= edge_cut(g, labels) <= g.total_edge_weight + 1e-9


class TestRefinementProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=6, max_value=40), st.integers(min_value=0, max_value=300))
    def test_kway_never_increases_cut(self, n, seed):
        g = random_weighted_graph(n, 0.25, seed)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, size=n)
        refined, gain = kway_refine(g, labels, k=4)
        assert edge_cut(g, refined) <= edge_cut(g, labels) + 1e-9
        assert gain == pytest.approx(edge_cut(g, labels) - edge_cut(g, refined))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=0, max_value=300))
    def test_kl_preserves_node_counts(self, n, seed):
        g = random_weighted_graph(n, 0.25, seed)
        rng = np.random.default_rng(seed)
        labels = (rng.random(n) < 0.5).astype(np.int64)
        refined, _ = kl_refine_bisection(g, labels)
        # KL only swaps: per-part node counts are invariant.
        assert np.bincount(refined, minlength=2).tolist() == np.bincount(
            labels, minlength=2
        ).tolist()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=6, max_value=30), st.integers(min_value=0, max_value=100))
    def test_kway_idempotent_at_fixpoint(self, n, seed):
        g = random_weighted_graph(n, 0.3, seed)
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=n)
        # Drive to a true fixpoint first (a single call is pass-bounded
        # and may stop while still improving).
        current = labels
        for _ in range(20):
            current, gain = kway_refine(g, current, k=3, max_passes=10)
            if gain == 0.0:
                break
        twice, gain = kway_refine(g, current, k=3, max_passes=10)
        assert gain == pytest.approx(0.0, abs=1e-9)
        assert edge_cut(g, twice) == pytest.approx(edge_cut(g, current))
