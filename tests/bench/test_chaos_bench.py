"""Chaos-bench schema, plan generation, and report plumbing (no real runs)."""

import json
from pathlib import Path

from repro.bench.chaos_bench import (
    CHAOS_RETRY,
    SCHEMA,
    ChaosBenchRecord,
    ChaosBenchReport,
    chaos_plan,
)


def record(backend="serial", plan_seed=1, stage_s=1.0, contigs_match=True):
    return ChaosBenchRecord(
        dataset="D1",
        backend=backend,
        partitions=4,
        plan_seed=plan_seed,
        stage_s=stage_s,
        slowdown=stage_s / 0.8,
        contigs_match=contigs_match,
        n_contigs=10,
        injected=2,
        retries=2,
        respawns=1,
        fallbacks=0,
        recovered_partitions=2,
    )


class TestChaosPlan:
    def test_deterministic_over_real_stage_registry(self):
        from repro.distributed.stages import all_stages
        from repro.faults import FaultPlan

        plan = chaos_plan(7, n_parts=4)
        assert plan == chaos_plan(7, n_parts=4)
        assert not plan.empty
        stage_names = {spec.name for spec in all_stages()}
        for spec in plan.kernel_faults:
            assert spec.stage in stage_names
        # Serializable, so the plan a cell ran under can be re-run.
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_retry_budget_outlasts_generated_plans(self):
        # CHAOS_RETRY must tolerate every fault the generator emits,
        # otherwise cells would legitimately fail the recovery gate.
        for seed in range(1, 20):
            plan = chaos_plan(seed, n_parts=4)
            assert plan.max_fault_attempts < CHAOS_RETRY.max_attempts

    def test_hangs_are_short(self):
        assert chaos_plan(1, n_parts=4).hang_seconds < CHAOS_RETRY.task_deadline


class TestReport:
    def test_json_schema_and_roundtrip(self):
        report = ChaosBenchReport(
            records=[record(plan_seed=-1, stage_s=0.8), record()],
            metadata={"cpu_count": 1, "retry": CHAOS_RETRY.to_dict()},
        )
        payload = json.loads(report.to_json())
        assert payload["schema"] == SCHEMA
        assert len(payload["results"]) == 2
        faulted = payload["results"][1]
        for key in (
            "dataset",
            "backend",
            "partitions",
            "plan_seed",
            "stage_s",
            "slowdown",
            "contigs_match",
            "injected",
            "retries",
            "respawns",
            "fallbacks",
            "recovered_partitions",
        ):
            assert key in faulted
        assert faulted["contigs_match"] is True

    def test_summary_table_flags_mismatch(self):
        report = ChaosBenchReport(
            records=[record(), record(plan_seed=2, contigs_match=False)]
        )
        table = report.summary_table()
        assert "ok" in table
        assert "MISMATCH" in table
        assert "seed 2" in table

    def test_write(self, tmp_path):
        path = tmp_path / "chaos.json"
        ChaosBenchReport(records=[record()]).write(str(path))
        assert json.loads(path.read_text())["schema"] == SCHEMA


class TestServiceAxis:
    """Gating logic of bench_service, with the scenario runner stubbed."""

    @staticmethod
    def _results(**overrides):
        from repro.service.chaos import ScenarioResult

        base = dict(
            state="done",
            contigs=b">contig_0\nACGT\n",
            wall_s=1.0,
            result={"n_contigs": 5},
        )
        made = {
            "baseline": ScenarioResult(
                scenario="baseline", job_id="b", **base
            ),
            "worker-kill": ScenarioResult(
                scenario="worker-kill",
                job_id="w",
                kills=1,
                attempts=2,
                takeovers=1,
                **base,
            ),
            "supervisor-kill": ScenarioResult(
                scenario="supervisor-kill",
                job_id="s",
                kills=2,
                attempts=2,
                takeovers=1,
                owners=2,
                **base,
            ),
            "takeover": ScenarioResult(
                scenario="takeover",
                job_id="t",
                attempts=2,
                takeovers=1,
                owners=2,
                **base,
            ),
        }
        for name, fields in overrides.items():
            for key, value in fields.items():
                setattr(made[name], key, value)
        return made

    def _run(self, monkeypatch, made):
        import repro.service.chaos as chaos_mod
        from repro.bench.chaos_bench import bench_service

        monkeypatch.setattr(
            chaos_mod, "run_scenario", lambda sc, root, reads, timeout: made[sc]
        )
        monkeypatch.setattr(
            chaos_mod, "write_service_reads", lambda path: path
        )
        return bench_service()

    def test_clean_scenarios_pass(self, monkeypatch):
        records, ok = self._run(monkeypatch, self._results())
        assert ok
        assert [r.scenario for r in records] == [
            "baseline",
            "worker-kill",
            "supervisor-kill",
            "takeover",
        ]
        assert all(r.contigs_match for r in records)
        assert all(r.dataset == "SVC" for r in records)

    def test_contig_mismatch_fails_gate(self, monkeypatch):
        made = self._results(**{"worker-kill": {"contigs": b"different"}})
        records, ok = self._run(monkeypatch, made)
        assert not ok
        bad = next(r for r in records if r.scenario == "worker-kill")
        assert not bad.contigs_match

    def test_double_takeover_fails_gate(self, monkeypatch):
        # Two stale-lease requeues for one incident means the CAS
        # arbitration failed — both supervisors acted.
        made = self._results(takeover={"takeovers": 2})
        records, ok = self._run(monkeypatch, made)
        assert not ok

    def test_single_owner_supervisor_kill_fails_gate(self, monkeypatch):
        # If one supervisor owned every attempt, the restart path was
        # never exercised.
        made = self._results(**{"supervisor-kill": {"owners": 1}})
        _, ok = self._run(monkeypatch, made)
        assert not ok

    def test_unfinished_job_fails_gate(self, monkeypatch):
        made = self._results(
            **{"supervisor-kill": {"state": "failed", "contigs": b""}}
        )
        _, ok = self._run(monkeypatch, made)
        assert not ok


class TestCheckedInTrajectory:
    """The committed BENCH_chaos.json must stay valid and fully recovered."""

    def _payload(self):
        path = Path(__file__).resolve().parents[2] / "BENCH_chaos.json"
        return json.loads(path.read_text())

    def test_checked_in_file_matches_schema(self):
        payload = self._payload()
        assert payload["schema"] == SCHEMA
        assert payload["results"], "trajectory must not be empty"
        backends = {r["backend"] for r in payload["results"]}
        assert backends == {"serial", "sim", "process", "service"}
        records = [ChaosBenchRecord(**r) for r in payload["results"]]
        # The recovery gate that produced the file: every faulted cell
        # recovered the fault-free contigs byte-for-byte.
        assert all(r.contigs_match for r in records)
        # Each backend has a baseline cell and at least one chaos cell
        # where faults actually fired.
        for backend in backends - {"service"}:
            cells = [r for r in records if r.backend == backend]
            assert any(r.plan_seed < 0 for r in cells)
            assert any(r.plan_seed >= 0 and r.injected > 0 for r in cells)

    def test_checked_in_service_axis_proves_recovery(self):
        records = [
            ChaosBenchRecord(**r)
            for r in self._payload()["results"]
            if r["backend"] == "service"
        ]
        by_scenario = {r.scenario: r for r in records}
        assert set(by_scenario) == {
            "baseline",
            "worker-kill",
            "supervisor-kill",
            "takeover",
        }
        # the kills actually happened, recovery actually resumed
        assert by_scenario["worker-kill"].kills == 1
        assert by_scenario["worker-kill"].attempts == 2
        assert by_scenario["supervisor-kill"].kills == 2
        assert by_scenario["supervisor-kill"].owners >= 2
        # exactly one supervisor won the stale-lease race
        assert by_scenario["takeover"].takeovers == 1
