"""Tests for the benchmark harness pieces."""

import pytest

from repro.bench.datasets import STANDARD_SPECS, DatasetSpec, build_dataset
from repro.bench.reporting import format_series, format_table
from repro.simulate.community import CommunityConfig
from repro.simulate.reads import ReadSimConfig


def tiny_spec(name="T", seed=5):
    return DatasetSpec(
        name=name,
        seed=seed,
        community=CommunityConfig(shared_length=1500, private_length=800, repeat_copies=0),
        reads=ReadSimConfig(read_length=100, coverage=2.0),
    )


class TestDatasets:
    def test_three_standard_specs(self):
        assert [s.name for s in STANDARD_SPECS] == ["D1", "D2", "D3"]
        assert len({s.seed for s in STANDARD_SPECS}) == 3

    def test_build_dataset(self):
        ds = build_dataset(tiny_spec())
        assert ds.name == "T"
        assert ds.n_reads > 0
        assert ds.read_length == 100
        assert ds.total_bases == ds.n_reads * 100

    def test_deterministic(self):
        a = build_dataset(tiny_spec())
        b = build_dataset(tiny_spec())
        assert (a.reads.data == b.reads.data).all()

    def test_seeds_differ(self):
        a = build_dataset(tiny_spec(seed=5))
        b = build_dataset(tiny_spec(seed=6))
        assert not (
            a.reads.data[: min(a.reads.total_bases, b.reads.total_bases)]
            == b.reads.data[: min(a.reads.total_bases, b.reads.total_bases)]
        ).all()

    def test_reads_carry_truth_labels(self):
        ds = build_dataset(tiny_spec())
        assert all("genus" in m for m in ds.reads.meta)


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 0.001]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("speedup", [1, 2], [1.0, 1.9], x_label="p")
        assert "# speedup" in out
        assert "p=1" in out and "speedup=1.9" in out

    def test_format_series_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_empty_table(self):
        out = format_table(["x"], [])
        assert "x" in out
