"""Schema smoke tests for the out-of-core scale bench (tiny sizes)."""

import json

import pytest

from repro.bench.datasets import FinishScaleSpec
from repro.bench.scale_bench import (
    MEMORY_SLACK_BYTES,
    SCHEMA,
    ScaleBenchRecord,
    memory_failures,
    run_scale_bench,
)
from repro.cli import build_parser

TINY = FinishScaleSpec(name="T1", backbone=30, seed=9)
TINY_EQ = FinishScaleSpec(name="TE", backbone=20, seed=10)


@pytest.fixture(scope="module")
def report():
    rep, agree = run_scale_bench(
        specs=[TINY],
        shard_size=32,
        cache_budget=1 << 20,
        equivalence_spec=TINY_EQ,
    )
    return rep, agree


class TestScaleBenchSchema:
    def test_cells_present(self, report):
        rep, _ = report
        cells = {(r.dataset, r.cell) for r in rep.records}
        assert ("T1", "pack") in cells
        assert ("T1", "stream") in cells
        for backend in ("serial", "sim", "process"):
            assert ("TE", f"equivalence:{backend}") in cells

    def test_equivalence_holds_at_tiny_scale(self, report):
        rep, agree = report
        assert agree
        for r in rep.records:
            if r.cell.startswith("equivalence:"):
                assert r.extra["identical"]
                assert r.extra["n_contigs"] > 0

    def test_json_schema(self, report, tmp_path):
        rep, _ = report
        path = tmp_path / "BENCH_scale.json"
        rep.write(str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        meta = payload["metadata"]
        assert meta["cache_budget_bytes"] == 1 << 20
        assert meta["memory_slack_bytes"] == MEMORY_SLACK_BYTES
        assert "memory_gate" in meta
        assert meta["specs"][0]["name"] == "T1"
        assert meta["specs"][0]["read_equivalent"] == TINY.read_equivalent
        for row in payload["results"]:
            assert set(row) >= {
                "dataset",
                "cell",
                "n_reads",
                "seconds",
                "peak_tracked_bytes",
                "ru_maxrss_kb",
                "extra",
            }
            assert row["seconds"] >= 0
            assert row["peak_tracked_bytes"] > 0

    def test_pack_and_stream_extras(self, report):
        rep, _ = report
        by_cell = {r.cell: r for r in rep.records if r.dataset == "T1"}
        pack = by_cell["pack"]
        assert pack.extra["n_shards"] >= 2  # tiny shards force sharding
        assert pack.extra["store_bytes"] > 0
        stream = by_cell["stream"]
        assert stream.extra["kmer_windows"] > 0
        assert stream.extra["cache"]["misses"] > 0
        assert stream.n_reads == TINY.read_equivalent

    def test_summary_table_renders(self, report):
        rep, _ = report
        table = rep.summary_table()
        assert "T1" in table and "stream" in table


class TestMemoryGate:
    def _record(self, cell, peak):
        return ScaleBenchRecord(
            dataset="X",
            cell=cell,
            n_reads=1,
            seconds=0.0,
            peak_tracked_bytes=peak,
            ru_maxrss_kb=0,
        )

    def test_under_ceiling_passes(self):
        budget = 1 << 20
        recs = [self._record("stream", budget + MEMORY_SLACK_BYTES)]
        assert memory_failures(recs, budget) == []

    def test_over_ceiling_fails(self):
        budget = 1 << 20
        recs = [self._record("stream", budget + MEMORY_SLACK_BYTES + 1)]
        failures = memory_failures(recs, budget)
        assert len(failures) == 1
        assert "over ceiling" in failures[0]

    def test_only_stream_cells_are_gated(self):
        recs = [self._record("pack", 1 << 40)]
        assert memory_failures(recs, 0) == []


class TestCLIWiring:
    def test_bench_scale_parses(self):
        args = build_parser().parse_args(
            [
                "bench",
                "scale",
                "-o",
                "out.json",
                "--datasets",
                "S4",
                "--shard-size",
                "128",
                "--cache-budget-mb",
                "16",
                "--skip-equivalence",
            ]
        )
        assert args.bench_command == "scale"
        assert args.datasets == ["S4"]
        assert args.cache_budget_mb == 16
        assert args.skip_equivalence

    def test_pack_and_assemble_store_parse(self):
        parser = build_parser()
        p = parser.parse_args(["pack", "r.fastq", "-o", "r.store"])
        assert p.command == "pack" and p.shard_size == 4096
        a = parser.parse_args(["assemble", "--store", "r.store", "-o", "c.fa"])
        assert a.store == "r.store" and a.reads is None
