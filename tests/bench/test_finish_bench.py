"""Finish-bench schema, gate logic, and report plumbing (no real runs)."""

import json

from repro.bench.finish_bench import (
    SCHEMA,
    FinishBenchRecord,
    FinishBenchReport,
    process_gate_enforced,
    regression_failures,
)


def record(dataset="D1", backend="serial", partitions=4, stage_s=1.0):
    return FinishBenchRecord(
        dataset=dataset,
        backend=backend,
        partitions=partitions,
        stage_s=stage_s,
        time_kind="virtual" if backend == "sim" else "wall",
        stages={"transitive": stage_s},
        n_contigs=10,
        n50=1000,
    )


class TestProcessGate:
    def test_enforced_on_multicore(self):
        assert process_gate_enforced(2)
        assert process_gate_enforced(64)

    def test_skipped_on_single_core(self):
        assert not process_gate_enforced(1)
        assert not process_gate_enforced(None)


class TestRegressionFailures:
    def test_process_slower_flagged_at_gated_partitions(self):
        records = [
            record(backend="serial", partitions=4, stage_s=1.0),
            record(backend="process", partitions=4, stage_s=2.0),
        ]
        failures = regression_failures(records)
        assert len(failures) == 1
        assert "process" in failures[0] and "serial" in failures[0]

    def test_process_faster_passes(self):
        records = [
            record(backend="serial", partitions=4, stage_s=2.0),
            record(backend="process", partitions=4, stage_s=1.0),
        ]
        assert regression_failures(records) == []

    def test_small_partition_counts_ungated(self):
        records = [
            record(backend="serial", partitions=2, stage_s=1.0),
            record(backend="process", partitions=2, stage_s=5.0),
        ]
        assert regression_failures(records) == []

    def test_sim_backend_never_gated(self):
        records = [
            record(backend="serial", partitions=4, stage_s=1.0),
            record(backend="sim", partitions=4, stage_s=9.0),
        ]
        assert regression_failures(records) == []

    def test_missing_serial_baseline_ignored(self):
        assert regression_failures([record(backend="process", stage_s=9.0)]) == []


class TestReport:
    def test_json_schema_and_roundtrip(self):
        report = FinishBenchReport(
            records=[record(), record(backend="process", stage_s=0.5)],
            metadata={"cpu_count": 1, "process_gate_enforced": False},
        )
        payload = json.loads(report.to_json())
        assert payload["schema"] == SCHEMA
        assert payload["metadata"]["process_gate_enforced"] is False
        assert len(payload["results"]) == 2
        assert payload["results"][0]["stages"] == {"transitive": 1.0}

    def test_summary_table_reports_speedup_vs_serial(self):
        report = FinishBenchReport(
            records=[record(stage_s=2.0), record(backend="process", stage_s=1.0)]
        )
        table = report.summary_table()
        assert "2.00x" in table
        assert "process" in table and "serial" in table

    def test_write(self, tmp_path):
        path = tmp_path / "bench.json"
        FinishBenchReport(records=[record()]).write(str(path))
        assert json.loads(path.read_text())["schema"] == SCHEMA


class TestCheckedInTrajectory:
    """The committed BENCH_finish.json must stay valid and gate-clean."""

    def test_checked_in_file_matches_schema(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_finish.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        assert payload["results"], "trajectory must not be empty"
        backends = {r["backend"] for r in payload["results"]}
        assert backends == {"serial", "sim", "process"}
        records = [
            FinishBenchRecord(**r) for r in payload["results"]
        ]
        # The gate that produced the file: enforced only on multi-core.
        if process_gate_enforced(payload["metadata"]["cpu_count"]):
            assert regression_failures(records) == []
