"""Finish-bench schema, gate logic, and report plumbing (no real runs)."""

import json

from repro.bench.finish_bench import (
    SCHEMA,
    SPARSE_GATE_MIN_NODES,
    FinishBenchRecord,
    FinishBenchReport,
    process_gate_enforced,
    regression_failures,
    sparse_regression_failures,
)


def record(
    dataset="D1",
    backend="serial",
    partitions=4,
    stage_s=1.0,
    engine="loop",
    n_nodes=200,
    trim_s=None,
):
    return FinishBenchRecord(
        dataset=dataset,
        backend=backend,
        partitions=partitions,
        stage_s=stage_s,
        time_kind="virtual" if backend == "sim" else "wall",
        stages={
            "transitive": stage_s,
            "trim_total": stage_s if trim_s is None else trim_s,
        },
        n_contigs=10,
        n50=1000,
        engine=engine,
        n_nodes=n_nodes,
    )


class TestProcessGate:
    def test_enforced_on_multicore(self):
        assert process_gate_enforced(2)
        assert process_gate_enforced(64)

    def test_skipped_on_single_core(self):
        assert not process_gate_enforced(1)
        assert not process_gate_enforced(None)


class TestRegressionFailures:
    def test_process_slower_flagged_at_gated_partitions(self):
        records = [
            record(backend="serial", partitions=4, stage_s=1.0),
            record(backend="process", partitions=4, stage_s=2.0),
        ]
        failures = regression_failures(records)
        assert len(failures) == 1
        assert "process" in failures[0] and "serial" in failures[0]

    def test_process_faster_passes(self):
        records = [
            record(backend="serial", partitions=4, stage_s=2.0),
            record(backend="process", partitions=4, stage_s=1.0),
        ]
        assert regression_failures(records) == []

    def test_small_partition_counts_ungated(self):
        records = [
            record(backend="serial", partitions=2, stage_s=1.0),
            record(backend="process", partitions=2, stage_s=5.0),
        ]
        assert regression_failures(records) == []

    def test_sim_backend_never_gated(self):
        records = [
            record(backend="serial", partitions=4, stage_s=1.0),
            record(backend="sim", partitions=4, stage_s=9.0),
        ]
        assert regression_failures(records) == []

    def test_missing_serial_baseline_ignored(self):
        assert regression_failures([record(backend="process", stage_s=9.0)]) == []

    def test_comparison_is_within_engine(self):
        # Sparse process vs LOOP serial must not cross-compare.
        records = [
            record(backend="serial", engine="loop", stage_s=1.0),
            record(backend="serial", engine="sparse", stage_s=5.0),
            record(backend="process", engine="sparse", stage_s=4.0),
        ]
        assert regression_failures(records) == []


class TestSparseRegressionFailures:
    def test_sparse_slower_flagged_at_scale(self):
        records = [
            record(dataset="S5", engine="loop", n_nodes=20000, trim_s=2.0),
            record(dataset="S5", engine="sparse", n_nodes=20000, trim_s=3.0),
        ]
        failures = sparse_regression_failures(records)
        assert len(failures) == 1
        assert "sparse" in failures[0] and "loop" in failures[0]

    def test_sparse_faster_passes(self):
        records = [
            record(dataset="S5", engine="loop", n_nodes=20000, trim_s=3.0),
            record(dataset="S5", engine="sparse", n_nodes=20000, trim_s=1.0),
        ]
        assert sparse_regression_failures(records) == []

    def test_small_graphs_ungated(self):
        small = SPARSE_GATE_MIN_NODES - 1
        records = [
            record(engine="loop", n_nodes=small, trim_s=1.0),
            record(engine="sparse", n_nodes=small, trim_s=9.0),
        ]
        assert sparse_regression_failures(records) == []

    def test_missing_loop_baseline_ignored(self):
        records = [record(engine="sparse", n_nodes=20000, trim_s=9.0)]
        assert sparse_regression_failures(records) == []


class TestReport:
    def test_json_schema_and_roundtrip(self):
        report = FinishBenchReport(
            records=[record(), record(backend="process", stage_s=0.5)],
            metadata={"cpu_count": 1, "process_gate_enforced": False},
        )
        payload = json.loads(report.to_json())
        assert payload["schema"] == SCHEMA
        assert payload["metadata"]["process_gate_enforced"] is False
        assert len(payload["results"]) == 2
        assert payload["results"][0]["stages"]["transitive"] == 1.0
        assert payload["results"][0]["engine"] == "loop"

    def test_engine_speedups_pair_loop_with_sparse(self):
        report = FinishBenchReport(
            records=[
                record(engine="loop", stage_s=2.0, trim_s=2.0),
                record(engine="sparse", stage_s=0.5, trim_s=0.5),
            ]
        )
        payload = json.loads(report.to_json())
        rows = payload["engine_speedups"]
        assert rows, "both engines present must yield speedup rows"
        by_stage = {row["stage"]: row for row in rows}
        assert by_stage["trim_total"]["speedup"] == 4.0
        assert by_stage["transitive"]["loop_s"] == 2.0

    def test_engine_speedups_empty_without_sparse_rows(self):
        report = FinishBenchReport(records=[record(engine="loop")])
        assert report.engine_speedups() == []

    def test_summary_table_reports_speedups(self):
        report = FinishBenchReport(
            records=[
                record(stage_s=2.0, trim_s=2.0),
                record(backend="process", stage_s=1.0),
                record(engine="sparse", stage_s=0.5, trim_s=0.5),
            ]
        )
        table = report.summary_table()
        assert "2.00x" in table  # process vs serial, same engine
        assert "4.00x" in table  # sparse trim vs loop trim
        assert "Engine" in table and "sparse" in table

    def test_write(self, tmp_path):
        path = tmp_path / "bench.json"
        FinishBenchReport(records=[record()]).write(str(path))
        assert json.loads(path.read_text())["schema"] == SCHEMA


class TestCheckedInTrajectory:
    """The committed BENCH_finish.json must stay valid and gate-clean."""

    def test_checked_in_file_matches_schema(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_finish.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        assert payload["results"], "trajectory must not be empty"
        backends = {r["backend"] for r in payload["results"]}
        assert backends == {"serial", "sim", "process"}
        engines = {r["engine"] for r in payload["results"]}
        assert engines == {"loop", "sparse"}
        records = [FinishBenchRecord(**r) for r in payload["results"]]
        # The gates that produced the file: process gate only on
        # multi-core; the sparse gate is unconditional.
        if process_gate_enforced(payload["metadata"]["cpu_count"]):
            assert regression_failures(records) == []
        assert sparse_regression_failures(records) == []
        assert payload["engine_speedups"], "speedup rows must be present"

    def test_checked_in_file_shows_scale_speedup(self):
        """The engine's reason to exist: >=5x trimming at scale."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_finish.json"
        payload = json.loads(path.read_text())
        at_scale = [
            r
            for r in payload["results"]
            if r["n_nodes"] >= SPARSE_GATE_MIN_NODES
        ]
        assert at_scale, "trajectory must include a finish-scale dataset"
        largest = max(r["n_nodes"] for r in at_scale)
        trims = {
            (r["partitions"], r["engine"]): r["stages"]["trim_total"]
            for r in at_scale
            if r["n_nodes"] == largest and r["backend"] == "serial"
        }
        speedups = [
            trims[(k, "loop")] / trims[(k, "sparse")]
            for (k, eng) in trims
            if eng == "loop" and trims.get((k, "sparse"))
        ]
        assert speedups and max(speedups) >= 5.0
