"""Tests for the overlap-engine benchmark harness."""

import json

from repro.bench.datasets import DatasetSpec, build_dataset
from repro.bench.overlap_bench import (
    SCHEMA,
    OverlapBenchRecord,
    OverlapBenchReport,
    bench_dataset,
    regression_failures,
)
from repro.simulate.community import GUT_GENERA, CommunityConfig
from repro.simulate.reads import ReadSimConfig

TINY = DatasetSpec(
    name="tiny",
    seed=9,
    community=CommunityConfig(
        taxa=GUT_GENERA[:2], shared_length=400, private_length=300, repeat_copies=0
    ),
    reads=ReadSimConfig(read_length=100, coverage=4.0),
)


def rec(dataset, engine, wall):
    return OverlapBenchRecord(
        dataset=dataset,
        engine=engine,
        wall_s=wall,
        reads_per_s=100.0,
        candidates_verified=10,
        overlaps_found=5,
    )


class TestBenchDataset:
    def test_records_and_agreement(self):
        records, agree = bench_dataset(build_dataset(TINY), workers=2, n_subsets=2)
        assert agree
        assert [r.engine for r in records] == ["loop", "vectorized", "process"]
        loop, vec, proc = records
        assert loop.dataset == "tiny"
        assert loop.overlaps_found == vec.overlaps_found == proc.overlaps_found
        assert loop.candidates_verified == vec.candidates_verified
        assert proc.workers == 2
        assert all(r.wall_s > 0 and r.reads_per_s > 0 for r in records)


class TestReport:
    def test_json_schema(self, tmp_path):
        report = OverlapBenchReport(
            records=[rec("D1", "loop", 2.0), rec("D1", "vectorized", 0.5)],
            metadata={"cpu_count": 1},
        )
        path = tmp_path / "bench.json"
        report.write(str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA
        assert data["metadata"]["cpu_count"] == 1
        assert len(data["results"]) == 2
        assert set(data["results"][0]) == {
            "dataset",
            "engine",
            "wall_s",
            "reads_per_s",
            "candidates_verified",
            "overlaps_found",
            "workers",
        }

    def test_summary_table_has_speedup_column(self):
        report = OverlapBenchReport(
            records=[rec("D1", "loop", 2.0), rec("D1", "vectorized", 0.5)]
        )
        table = report.summary_table()
        assert "vs loop" in table
        assert "4.00x" in table


class TestRegressionGate:
    def test_faster_vectorized_passes(self):
        records = [rec("D1", "loop", 2.0), rec("D1", "vectorized", 0.5)]
        assert regression_failures(records) == []

    def test_slower_vectorized_fails(self):
        records = [
            rec("D1", "loop", 2.0),
            rec("D1", "vectorized", 0.5),
            rec("D2", "loop", 1.0),
            rec("D2", "vectorized", 3.0),
        ]
        failures = regression_failures(records)
        assert len(failures) == 1
        assert failures[0].startswith("D2")

    def test_process_rows_exempt(self):
        # The process engine may legitimately be slower on few-core
        # hosts; only the serial vectorized-vs-loop ratio gates.
        records = [
            rec("D1", "loop", 2.0),
            rec("D1", "vectorized", 0.5),
            rec("D1", "process", 9.0),
        ]
        assert regression_failures(records) == []
