"""Tests for abundance profiling."""

import numpy as np
import pytest

from repro.analysis.abundance import abundance_error, estimate_abundances, profile_community
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.reads import ReadSimConfig, ReadSimulator


class TestEstimateAbundances:
    def test_length_normalisation(self):
        # genus B has a genome twice as long; equal read counts mean
        # B is half as abundant
        est = estimate_abundances(
            ["A"] * 10 + ["B"] * 10, ["A", "B"], {"A": 1000, "B": 2000}
        )
        assert est[0] == pytest.approx(2 / 3)
        assert est[1] == pytest.approx(1 / 3)

    def test_unclassified_ignored(self):
        est = estimate_abundances(["A", None, "A", "X"], ["A", "B"], {"A": 100, "B": 100})
        assert est[0] == 1.0 and est[1] == 0.0

    def test_empty_counts(self):
        est = estimate_abundances([None], ["A"], {"A": 100})
        assert est[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_abundances([], [], {})
        with pytest.raises(ValueError):
            estimate_abundances(["A"], ["A"], {"A": 0})


class TestAbundanceError:
    def test_identical_zero(self):
        p = np.array([0.3, 0.7])
        assert abundance_error(p, p) == 0.0

    def test_disjoint_one(self):
        assert abundance_error(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            abundance_error(np.array([1.0]), np.array([0.5, 0.5]))


class TestProfileCommunity:
    def test_recovers_simulated_profile(self):
        community = build_community(
            CommunityConfig(shared_length=2500, private_length=2000, repeat_copies=0),
            seed=61,
        )
        reads = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=4, seed=61)
        ).simulate_community(community)
        genera, estimated, truth, err = profile_community(reads, community)
        assert len(genera) == 10
        assert estimated.sum() == pytest.approx(1.0)
        # classification against own references is near-perfect, so the
        # profile error is just multinomial sampling noise
        assert err < 0.05
        # strong profile agreement (exact argmax can flip between two
        # near-equal genera under sampling noise)
        assert np.corrcoef(estimated, truth)[0, 1] > 0.9
