"""Tests for the QUAST-lite assembly accuracy evaluator."""

import numpy as np
import pytest

from repro.analysis.accuracy import evaluate_assembly
from repro.sequence.dna import reverse_complement
from repro.simulate.genome import Genome, random_genome


@pytest.fixture
def reference():
    return Genome("ref", random_genome(5000, np.random.default_rng(42)))


class TestEvaluateAssembly:
    def test_perfect_single_contig(self, reference):
        report = evaluate_assembly([reference.codes.copy()], [reference])
        assert report.n_placed == 1
        assert report.genome_fraction == pytest.approx(1.0)
        assert report.mean_identity == pytest.approx(1.0)
        assert report.duplication_ratio == pytest.approx(1.0)
        assert report.n_misassembled == 0

    def test_partial_coverage(self, reference):
        contigs = [reference.codes[:1000].copy(), reference.codes[3000:4000].copy()]
        report = evaluate_assembly(contigs, [reference])
        assert report.genome_fraction == pytest.approx(0.4)
        assert report.n_placed == 2
        p0 = report.placements[0]
        assert p0.position == 0 and p0.strand == "+"

    def test_reverse_strand_placed(self, reference):
        contig = reverse_complement(reference.codes[1000:2000])
        report = evaluate_assembly([contig], [reference])
        assert report.n_placed == 1
        assert report.placements[0].strand == "-"

    def test_duplicated_assembly(self, reference):
        contig = reference.codes[:2000].copy()
        report = evaluate_assembly([contig, contig.copy()], [reference])
        assert report.duplication_ratio == pytest.approx(2.0)
        assert report.genome_fraction == pytest.approx(0.4)

    def test_garbage_contig_flagged(self, reference):
        alien = random_genome(800, np.random.default_rng(999))
        report = evaluate_assembly([alien], [reference])
        assert report.n_misassembled == 1
        assert report.n_placed == 0
        assert report.genome_fraction == 0.0

    def test_chimeric_contig_flagged(self, reference):
        # two distant regions glued together: no single placement verifies
        chimera = np.concatenate([reference.codes[:500], reference.codes[3000:3500]])
        report = evaluate_assembly([chimera], [reference], min_identity=0.95)
        assert report.n_misassembled == 1

    def test_small_errors_tolerated(self, reference):
        noisy = reference.codes[:2000].copy()
        noisy[::211] = (noisy[::211] + 1) % 4  # ~0.5% errors
        report = evaluate_assembly([noisy], [reference], min_identity=0.95)
        assert report.n_placed == 1
        assert 0.98 < report.placements[0].identity < 1.0

    def test_multiple_references(self, reference):
        other = Genome("ref2", random_genome(3000, np.random.default_rng(43)))
        contigs = [reference.codes[:1000].copy(), other.codes[500:1500].copy()]
        report = evaluate_assembly(contigs, [reference, other])
        assert report.n_placed == 2
        refs = {p.reference for p in report.placements}
        assert refs == {"ref", "ref2"}

    def test_no_references_rejected(self):
        with pytest.raises(ValueError):
            evaluate_assembly([np.zeros(10, dtype=np.uint8)], [])

    def test_focus_assembly_is_accurate(self, reference):
        # integration: the real assembler's output passes the evaluator
        from repro import AssemblyConfig, FocusAssembler
        from repro.mpi.timing import CommCostModel
        from repro.simulate.reads import ReadSimConfig, ReadSimulator

        reads = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=10, seed=42)
        ).simulate_genome(reference)
        result = FocusAssembler(
            AssemblyConfig(n_partitions=2), cost_model=CommCostModel(alpha=1e-6)
        ).assemble(reads)
        report = evaluate_assembly(result.contigs, [reference], min_identity=0.95)
        assert report.n_misassembled == 0
        assert report.genome_fraction > 0.8
        assert report.mean_identity > 0.99
