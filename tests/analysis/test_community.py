"""Tests for genus-partition distribution analysis."""

import numpy as np
import pytest

from repro.analysis.community import (
    genus_partition_matrix,
    max_fraction_per_genus,
    normalized_entropy_per_genus,
    phylum_colocation,
    profile_correlation,
)
from repro.analysis.heatmap import render_heatmap


class TestGenusPartitionMatrix:
    def test_simple(self):
        genera = ["A", "B"]
        labels = ["A", "A", "A", "B", None]
        parts = np.array([0, 0, 1, 1, 0])
        m = genus_partition_matrix(labels, parts, genera, k=2)
        assert m[0].tolist() == [2 / 3, 1 / 3]
        assert m[1].tolist() == [0.0, 1.0]

    def test_rows_sum_to_one_or_zero(self):
        genera = ["A", "B", "C"]
        labels = ["A", "B", "A"]
        parts = np.array([0, 1, 2])
        m = genus_partition_matrix(labels, parts, genera, k=3)
        sums = m.sum(axis=1)
        assert sums[0] == pytest.approx(1.0)
        assert sums[2] == 0.0  # genus C had no reads

    def test_unknown_genus_ignored(self):
        m = genus_partition_matrix(["X"], np.array([0]), ["A"], k=1)
        assert m[0, 0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            genus_partition_matrix(["A"], np.array([0, 1]), ["A"], k=2)
        with pytest.raises(ValueError):
            genus_partition_matrix(["A"], np.array([5]), ["A"], k=2)


class TestConcentrationMeasures:
    def test_max_fraction(self):
        m = np.array([[1.0, 0.0], [0.5, 0.5]])
        assert max_fraction_per_genus(m).tolist() == [1.0, 0.5]

    def test_entropy_extremes(self):
        m = np.array([[1.0, 0.0, 0.0, 0.0], [0.25, 0.25, 0.25, 0.25]])
        ent = normalized_entropy_per_genus(m)
        assert ent[0] == pytest.approx(0.0)
        assert ent[1] == pytest.approx(1.0)

    def test_entropy_zero_row(self):
        ent = normalized_entropy_per_genus(np.zeros((1, 4)))
        assert ent[0] == 1.0

    def test_entropy_single_column(self):
        assert normalized_entropy_per_genus(np.ones((2, 1))).tolist() == [0.0, 0.0]


class TestCorrelation:
    def test_identical_profiles(self):
        m = np.array([[0.8, 0.2, 0.0], [0.8, 0.2, 0.0]])
        assert profile_correlation(m, 0, 1) == pytest.approx(1.0)

    def test_opposite_profiles(self):
        m = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert profile_correlation(m, 0, 1) == pytest.approx(-1.0)

    def test_flat_profile_zero(self):
        m = np.array([[0.5, 0.5], [1.0, 0.0]])
        assert profile_correlation(m, 0, 1) == 0.0

    def test_phylum_colocation(self):
        genera = ["a1", "a2", "b1"]
        phylum = {"a1": "P1", "a2": "P1", "b1": "P2"}
        m = np.array([[0.9, 0.1, 0.0], [0.8, 0.2, 0.0], [0.0, 0.1, 0.9]])
        same, cross = phylum_colocation(m, genera, phylum)
        assert same > 0.9
        assert cross < 0.0

    def test_colocation_skips_empty_rows(self):
        genera = ["a1", "a2"]
        phylum = {"a1": "P", "a2": "P"}
        m = np.array([[1.0, 0.0], [0.0, 0.0]])
        same, cross = phylum_colocation(m, genera, phylum)
        assert same == 0.0 and cross == 0.0


class TestHeatmap:
    def test_render_contains_labels(self):
        m = np.array([[0.9, 0.1], [0.2, 0.8]])
        out = render_heatmap(m, ["Bacteroides", "Roseburia"])
        assert "Bacteroides" in out and "Roseburia" in out
        assert "P0" in out and "P1" in out

    def test_peak_is_darkest(self):
        m = np.array([[0.05, 0.95]])
        out = render_heatmap(m, ["g"]).splitlines()[1]
        assert "@" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 2)), ["only-one"])
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(3), ["a"])
