"""Tests for the k-mer read classifier (BWA substitute)."""

import numpy as np
import pytest

from repro.analysis.classify import KmerClassifier
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.reads import ReadSimConfig, ReadSimulator


@pytest.fixture(scope="module")
def community():
    return build_community(
        CommunityConfig(shared_length=3000, private_length=2000, repeat_copies=0, seed=9)
    )


@pytest.fixture(scope="module")
def classifier(community):
    return KmerClassifier(community.reference_database(), k=21)


class TestKmerClassifier:
    def test_construction_validations(self):
        with pytest.raises(ValueError):
            KmerClassifier([])

    def test_reference_reads_classified(self, community, classifier):
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=0.5, seed=9))
        reads = sim.simulate_community(community)
        acc = classifier.accuracy_against_truth(reads)
        assert acc > 0.9

    def test_classify_private_region_exact(self, community, classifier):
        g = community.genome_by_genus("Prevotella")
        cfg = community.config
        # private region is genus-unique sequence
        frag = g.codes[cfg.shared_length + 100 : cfg.shared_length + 300]
        assert classifier.classify_codes(frag) == "Prevotella"

    def test_unrelated_sequence_unclassified(self, classifier):
        from repro.simulate.genome import random_genome

        alien = random_genome(200, np.random.default_rng(12345))
        # random 200bp shares essentially no exact 21-mers with references
        assert classifier.classify_codes(alien) is None

    def test_short_read_unclassified(self, classifier):
        assert classifier.classify_codes(np.zeros(5, dtype=np.uint8)) is None

    def test_min_votes_respected(self, community, classifier):
        g = community.genome_by_genus("Alistipes")
        cfg = community.config
        frag = g.codes[cfg.shared_length + 50 : cfg.shared_length + 130]
        assert classifier.classify_codes(frag, min_votes=1) == "Alistipes"
        assert classifier.classify_codes(frag, min_votes=10**6) is None

    def test_strand_invariance(self, community, classifier):
        from repro.sequence.dna import reverse_complement

        g = community.genome_by_genus("Escherichia")
        cfg = community.config
        frag = g.codes[cfg.shared_length + 200 : cfg.shared_length + 400]
        assert classifier.classify_codes(reverse_complement(frag)) == "Escherichia"

    def test_accuracy_requires_truth(self, classifier):
        from repro.io.readset import ReadSet

        with pytest.raises(ValueError):
            classifier.accuracy_against_truth(ReadSet.from_strings(["ACGT" * 30]))
