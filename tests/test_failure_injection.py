"""Failure-injection tests: the system degrades loudly, not silently."""

import io

import numpy as np
import pytest

from repro import AssemblyConfig, FocusAssembler
from repro.io.fastq import parse_fastq
from repro.io.readset import ReadSet
from repro.mpi.cluster import SimCluster
from repro.mpi.simcomm import DeadlockError
from repro.mpi.timing import CommCostModel
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


class TestCorruptInputs:
    def test_truncated_fastq_record(self):
        # file ends mid-record: quality line shorter than sequence
        text = "@r1\nACGTACGT\n+\nIIII"
        with pytest.raises(ValueError):
            list(parse_fastq(io.StringIO(text)))

    def test_garbage_bases_rejected_at_parse(self):
        text = "@r1\nAC?T\n+\nIIII\n"
        with pytest.raises(ValueError, match="invalid DNA"):
            list(parse_fastq(io.StringIO(text)))

    def test_all_reads_quality_failed(self):
        # every read is junk quality -> preprocessing drops everything
        from repro.io.records import Read

        reads = ReadSet(
            [Read.from_string(f"r{i}", "ACGT" * 30, quals=np.full(120, 2)) for i in range(10)]
        )
        assembler = FocusAssembler(AssemblyConfig(min_quality=20), cost_model=FAST)
        with pytest.raises(ValueError, match="no reads survived"):
            assembler.assemble(reads)


class TestDegenerateWorkloads:
    def test_no_overlaps_at_all(self):
        # reads from unrelated random sequences: no edges, every read a
        # singleton contig; the pipeline must not crash
        rng = np.random.default_rng
        from repro.sequence.dna import decode

        seqs = [decode(random_genome(100, rng(i))) for i in range(12)]
        reads = ReadSet.from_strings(seqs)
        assembler = FocusAssembler(
            AssemblyConfig(n_partitions=2, add_reverse_complements=False), cost_model=FAST
        )
        result = assembler.assemble(reads)
        assert result.g0.n_edges == 0
        assert result.stats.n_contigs == 12
        assert result.stats.n50 == 100

    def test_single_read(self):
        from repro.sequence.dna import decode

        reads = ReadSet.from_strings([decode(random_genome(150, np.random.default_rng(0)))])
        assembler = FocusAssembler(
            AssemblyConfig(n_partitions=1, add_reverse_complements=False), cost_model=FAST
        )
        result = assembler.assemble(reads)
        assert result.stats.n_contigs == 1
        assert result.stats.max_contig == 150

    def test_identical_duplicate_reads(self):
        from repro.sequence.dna import decode

        seq = decode(random_genome(120, np.random.default_rng(5)))
        reads = ReadSet.from_strings([seq] * 8)
        assembler = FocusAssembler(
            AssemblyConfig(n_partitions=2, add_reverse_complements=False), cost_model=FAST
        )
        result = assembler.assemble(reads)
        # eight copies of one sequence collapse to one contig of it
        assert result.stats.max_contig == 120

    def test_extreme_error_rate_fragments_assembly(self):
        g = Genome("g", random_genome(4000, np.random.default_rng(6)))
        clean = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=8, seed=6, flat_error_rate=0.0)
        ).simulate_genome(g)
        noisy = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=8, seed=6, flat_error_rate=0.08)
        ).simulate_genome(g)
        assembler = FocusAssembler(AssemblyConfig(n_partitions=2), cost_model=FAST)
        r_clean = assembler.assemble(clean)
        r_noisy = assembler.assemble(noisy)
        # 8% error kills most 50bp-overlap identities (0.92^... < 90%),
        # so the noisy assembly must be far more fragmented.
        assert r_noisy.stats.n50 < r_clean.stats.n50
        assert r_noisy.stats.n_contigs > r_clean.stats.n_contigs

    def test_low_coverage_leaves_gaps(self):
        g = Genome("g", random_genome(6000, np.random.default_rng(7)))
        sparse = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=2, seed=7)
        ).simulate_genome(g)
        assembler = FocusAssembler(AssemblyConfig(n_partitions=2), cost_model=FAST)
        result = assembler.assemble(sparse)
        # 2x coverage cannot produce one contig: coverage gaps fragment
        assert result.stats.n_contigs > 3
        assert result.stats.max_contig < len(g)


class TestRuntimeFailures:
    def test_worker_crash_surfaces_rank(self):
        def fn(comm):
            if comm.rank == 1:
                raise KeyError("partition table corrupted")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            SimCluster(3, cost_model=FAST).run(fn)

    def test_mismatched_collective_deadlocks_cleanly(self):
        def fn(comm):
            if comm.rank == 0:
                comm.gather(1, root=0)  # noqa: MPI001 - deliberate deadlock fixture
            # rank 1 returns immediately

        with pytest.raises(RuntimeError, match="timed out|failed"):
            SimCluster(2, cost_model=FAST, deadlock_timeout=0.3).run(fn)

    def test_recv_from_dead_rank(self):
        def fn(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # noqa: MPI004 - deliberate dead-peer fixture

        with pytest.raises(RuntimeError):
            SimCluster(2, cost_model=FAST, deadlock_timeout=0.3).run(fn)
