"""Unit tests for the gut taxonomy model."""

from repro.simulate import taxonomy


class TestTaxonomy:
    def test_ten_genera(self):
        assert len(taxonomy.GUT_GENERA) == 10

    def test_three_phyla(self):
        assert taxonomy.phyla() == ["Firmicutes", "Bacteroidetes", "Proteobacteria"]

    def test_paper_assignments(self):
        # Assignments called out explicitly in the paper's Fig. 7 text.
        assert taxonomy.PHYLUM_OF["Roseburia"] == "Firmicutes"
        assert taxonomy.PHYLUM_OF["Clostridium"] == "Firmicutes"
        assert taxonomy.PHYLUM_OF["Eubacterium"] == "Firmicutes"
        assert taxonomy.PHYLUM_OF["Bacteroides"] == "Bacteroidetes"
        assert taxonomy.PHYLUM_OF["Escherichia"] == "Proteobacteria"

    def test_genera_of_phylum(self):
        assert set(taxonomy.genera_of_phylum("Bacteroidetes")) == {
            "Alistipes",
            "Bacteroides",
            "Parabacteroides",
            "Prevotella",
        }

    def test_unknown_phylum_empty(self):
        assert taxonomy.genera_of_phylum("Cyanobacteria") == []

    def test_genera_unique(self):
        genera = [t.genus for t in taxonomy.GUT_GENERA]
        assert len(set(genera)) == len(genera)
