"""Unit tests for the Illumina-like read simulator."""

import numpy as np
import pytest

from repro.sequence.dna import reverse_complement
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def make_genome(length=5000, seed=0, **meta):
    return Genome("g0", random_genome(length, np.random.default_rng(seed)), meta=meta)


class TestReadSimConfig:
    def test_defaults(self):
        ReadSimConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(read_length=0),
            dict(coverage=0),
            dict(tail_quality=50, base_quality=40),
            dict(flat_error_rate=2.0),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            ReadSimConfig(**kw)


class TestSimulateGenome:
    def test_read_count_matches_coverage(self):
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=10, seed=0))
        rs = sim.simulate_genome(make_genome(10_000))
        assert len(rs) == 1000

    def test_read_length(self):
        sim = ReadSimulator(ReadSimConfig(read_length=80, coverage=2, seed=0))
        rs = sim.simulate_genome(make_genome())
        assert (rs.lengths == 80).all()

    def test_short_genome_raises(self):
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=2))
        with pytest.raises(ValueError, match="shorter than read length"):
            sim.simulate_genome(make_genome(50))

    def test_error_free_reads_match_genome(self):
        g = make_genome()
        sim = ReadSimulator(ReadSimConfig(coverage=3, flat_error_rate=0.0, seed=1))
        rs = sim.simulate_genome(g)
        for i in range(min(20, len(rs))):
            meta = rs.meta[i]
            pos = meta["position"]
            frag = g.codes[pos : pos + rs.length_of(i)]
            obs = rs.codes_of(i)
            if meta["strand"] == "-":
                obs = reverse_complement(obs)
            assert (obs == frag).all()

    def test_flat_error_rate(self):
        g = make_genome(20_000)
        sim = ReadSimulator(ReadSimConfig(coverage=5, flat_error_rate=0.05, seed=2))
        rs = sim.simulate_genome(g)
        mismatches = 0
        total = 0
        for i in range(len(rs)):
            meta = rs.meta[i]
            frag = g.codes[meta["position"] : meta["position"] + rs.length_of(i)]
            obs = rs.codes_of(i)
            if meta["strand"] == "-":
                obs = reverse_complement(obs)
            mismatches += int((obs != frag).sum())
            total += obs.size
        assert mismatches / total == pytest.approx(0.05, abs=0.01)

    def test_quality_profile_decays(self):
        sim = ReadSimulator(ReadSimConfig(read_length=100, base_quality=38, tail_quality=10))
        profile = sim._quality_profile()
        assert profile[0] == 38
        assert profile[-1] == 10
        assert (np.diff(profile) <= 0).all()

    def test_qualities_attached(self):
        sim = ReadSimulator(ReadSimConfig(coverage=1, seed=0))
        rs = sim.simulate_genome(make_genome())
        assert rs.quals is not None
        q = rs.quals_of(0)
        assert q.min() >= 2 and q.max() <= 41

    def test_meta_ground_truth(self):
        g = make_genome(genus="Prevotella", phylum="Bacteroidetes")
        sim = ReadSimulator(ReadSimConfig(coverage=1, seed=0))
        rs = sim.simulate_genome(g)
        assert rs.meta[0]["genus"] == "Prevotella"
        assert rs.meta[0]["strand"] in "+-"
        assert 0 <= rs.meta[0]["position"] <= len(g) - 100

    def test_deterministic(self):
        sim = ReadSimulator(ReadSimConfig(coverage=2, seed=5))
        a = sim.simulate_genome(make_genome())
        b = sim.simulate_genome(make_genome())
        assert (a.data == b.data).all()

    def test_strands_mixed(self):
        sim = ReadSimulator(ReadSimConfig(coverage=5, seed=0))
        rs = sim.simulate_genome(make_genome())
        strands = {m["strand"] for m in rs.meta}
        assert strands == {"+", "-"}


class TestSimulateCommunity:
    def test_total_reads_near_coverage(self):
        com = build_community(CommunityConfig(shared_length=2000, private_length=1000, repeat_copies=0, seed=3))
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=5, seed=3))
        rs = sim.simulate_community(com)
        expected = 5 * com.total_genome_bases / 100
        assert len(rs) == pytest.approx(expected, rel=0.02)

    def test_abundance_skew_respected(self):
        com = build_community(
            CommunityConfig(shared_length=2000, private_length=1000, repeat_copies=0,
                            abundance_concentration=0.5, seed=4)
        )
        sim = ReadSimulator(ReadSimConfig(coverage=8, seed=4))
        rs = sim.simulate_community(com)
        counts = {}
        for m in rs.meta:
            counts[m["genus"]] = counts.get(m["genus"], 0) + 1
        # Strongly skewed Dirichlet => spread between most and least sampled genus.
        assert max(counts.values()) > 3 * max(1, min(counts.values()))

    def test_all_reads_labelled(self):
        com = build_community(CommunityConfig(shared_length=1500, private_length=500, repeat_copies=0, seed=5))
        sim = ReadSimulator(ReadSimConfig(coverage=2, seed=5))
        rs = sim.simulate_community(com)
        assert all("genus" in m and "phylum" in m for m in rs.meta)
