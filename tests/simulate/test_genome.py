"""Unit + property tests for genome generation, mutation, repeats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.dna import gc_content
from repro.simulate.genome import Genome, insert_repeats, mutate, random_genome


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRandomGenome:
    def test_length(self):
        assert random_genome(1000, rng()).size == 1000

    def test_zero_length(self):
        assert random_genome(0, rng()).size == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            random_genome(-1, rng())

    def test_gc_bounds(self):
        with pytest.raises(ValueError):
            random_genome(10, rng(), gc=1.5)

    def test_gc_targeting(self):
        g = random_genome(50_000, rng(), gc=0.7)
        assert gc_content(g) == pytest.approx(0.7, abs=0.02)

    def test_deterministic(self):
        assert (random_genome(100, rng(7)) == random_genome(100, rng(7))).all()

    def test_all_codes_valid(self):
        g = random_genome(5000, rng())
        assert g.max() <= 3


class TestMutate:
    def test_zero_rate_identity(self):
        g = random_genome(1000, rng())
        assert (mutate(g, 0.0, rng()) == g).all()

    def test_rate_one_changes_everything(self):
        g = random_genome(1000, rng())
        m = mutate(g, 1.0, rng())
        assert (m != g).all()

    def test_rate_targeting(self):
        g = random_genome(100_000, rng())
        m = mutate(g, 0.05, rng(1))
        frac = np.mean(m != g)
        assert frac == pytest.approx(0.05, abs=0.01)

    def test_does_not_modify_input(self):
        g = random_genome(100, rng())
        snapshot = g.copy()
        mutate(g, 0.5, rng())
        assert (g == snapshot).all()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            mutate(random_genome(10, rng()), 1.5, rng())

    def test_empty(self):
        assert mutate(np.array([], dtype=np.uint8), 0.3, rng()).size == 0

    @settings(max_examples=20)
    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=2**31))
    def test_codes_stay_valid(self, rate, seed):
        g = random_genome(200, rng(seed))
        m = mutate(g, rate, rng(seed + 1))
        assert m.max(initial=0) <= 3


class TestInsertRepeats:
    def test_length_grows(self):
        g = random_genome(1000, rng())
        out = insert_repeats(g, 100, 3, rng())
        assert out.size == 1000 + 300

    def test_zero_copies_identity(self):
        g = random_genome(100, rng())
        assert (insert_repeats(g, 50, 0, rng()) == g).all()

    def test_repeat_element_repeated(self):
        g = random_genome(2000, rng(3))
        out = insert_repeats(g, 150, 2, rng(3), divergence=0.0)
        # Perfect copies: some 150-mer occurs at least twice.
        from repro.sequence.kmers import kmer_codes

        vals = kmer_codes(out, 25)
        _, counts = np.unique(vals, return_counts=True)
        assert counts.max() >= 2

    def test_invalid_params(self):
        g = random_genome(10, rng())
        with pytest.raises(ValueError):
            insert_repeats(g, 0, 1, rng())
        with pytest.raises(ValueError):
            insert_repeats(g, 10, -1, rng())


class TestGenomeRecord:
    def test_sequence_property(self):
        g = Genome("g", np.array([0, 1, 2, 3], dtype=np.uint8))
        assert g.sequence == "ACGT"
        assert len(g) == 4

    def test_meta(self):
        g = Genome("g", np.array([0]), meta={"genus": "Prevotella"})
        assert g.meta["genus"] == "Prevotella"
