"""Unit tests for community construction."""

import numpy as np
import pytest

from repro.simulate.community import Community, CommunityConfig, build_community
from repro.simulate.genome import Genome
from repro.simulate.taxonomy import GUT_GENERA, Taxon


def small_config(**kw):
    base = dict(shared_length=2000, private_length=1000, repeat_copies=0, seed=1)
    base.update(kw)
    return CommunityConfig(**base)


class TestCommunityConfig:
    def test_defaults_valid(self):
        CommunityConfig()

    def test_empty_genomes_rejected(self):
        with pytest.raises(ValueError):
            CommunityConfig(shared_length=0, private_length=0)

    def test_no_taxa_rejected(self):
        with pytest.raises(ValueError):
            CommunityConfig(taxa=())


class TestBuildCommunity:
    def test_one_genome_per_taxon(self):
        com = build_community(small_config())
        assert len(com.genomes) == len(GUT_GENERA)
        assert set(com.genera) == {t.genus for t in GUT_GENERA}

    def test_abundances_normalised(self):
        com = build_community(small_config())
        assert com.abundances.sum() == pytest.approx(1.0)
        assert (com.abundances > 0).all()

    def test_deterministic(self):
        c1, c2 = build_community(small_config()), build_community(small_config())
        assert (c1.genomes[0].codes == c2.genomes[0].codes).all()
        assert (c1.abundances == c2.abundances).all()

    def test_seed_override(self):
        c1 = build_community(small_config(), seed=10)
        c2 = build_community(small_config(), seed=11)
        assert not (c1.genomes[0].codes == c2.genomes[0].codes).all()

    def test_same_phylum_genomes_similar(self):
        com = build_community(small_config())
        cfg = com.config
        ros = com.genome_by_genus("Roseburia").codes[: cfg.shared_length]
        clo = com.genome_by_genus("Clostridium").codes[: cfg.shared_length]
        esc = com.genome_by_genus("Escherichia").codes[: cfg.shared_length]
        same = np.mean(ros == clo)
        diff = np.mean(ros == esc)
        assert same > 0.9          # ~2% divergence each from ancestor
        assert diff < 0.5          # unrelated -> ~25% identity by chance

    def test_repeats_lengthen_genomes(self):
        plain = build_community(small_config())
        reps = build_community(small_config(repeat_copies=3, repeat_length=200))
        assert len(reps.genomes[0]) == len(plain.genomes[0]) + 600

    def test_genome_by_genus_missing(self):
        com = build_community(small_config())
        with pytest.raises(KeyError):
            com.genome_by_genus("Vibrio")

    def test_reference_database(self):
        com = build_community(small_config())
        db = com.reference_database()
        assert len(db) == len(com.genomes)

    def test_phylum_of_map(self):
        com = build_community(small_config())
        assert com.phylum_of["Bacteroides"] == "Bacteroidetes"


class TestCommunityValidation:
    def test_mismatched_abundances(self):
        g = [Genome("g", np.zeros(10, dtype=np.uint8), {"genus": "x", "phylum": "y"})]
        with pytest.raises(ValueError, match="one abundance per genome"):
            Community(CommunityConfig(taxa=(Taxon("x", "y"),)), g, np.array([0.5, 0.5]))

    def test_unnormalised_abundances(self):
        g = [Genome("g", np.zeros(10, dtype=np.uint8), {"genus": "x", "phylum": "y"})]
        with pytest.raises(ValueError, match="sum to 1"):
            Community(CommunityConfig(taxa=(Taxon("x", "y"),)), g, np.array([0.7]))
