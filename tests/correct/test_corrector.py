"""Tests for spectral read correction."""

import numpy as np
import pytest

from repro.correct.corrector import ReadCorrector
from repro.correct.spectrum import KmerSpectrum
from repro.io.readset import ReadSet
from repro.sequence.dna import decode
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


@pytest.fixture(scope="module")
def clean_world():
    g = Genome("g", random_genome(3000, np.random.default_rng(8)))
    sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=15, seed=8, flat_error_rate=0.0))
    reads = sim.simulate_genome(g)
    spectrum = KmerSpectrum(reads, k=21, threshold=3)
    return g, reads, spectrum


def plant_error(codes, pos):
    out = codes.copy()
    out[pos] = (out[pos] + 1) % 4
    return out


class TestCorrectRead:
    def test_clean_read_untouched(self, clean_world):
        _, reads, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        codes, changed, clean = corrector.correct_read(reads.codes_of(0))
        assert changed == 0 and clean
        assert (codes == reads.codes_of(0)).all()

    @pytest.mark.parametrize("pos", [0, 30, 50, 99])
    def test_single_error_fixed_exactly(self, clean_world, pos):
        _, reads, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        original = reads.codes_of(5)
        noisy = plant_error(original, pos)
        fixed, changed, clean = corrector.correct_read(noisy)
        assert clean
        assert changed == 1
        assert (fixed == original).all()

    def test_two_errors_fixed(self, clean_world):
        _, reads, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        original = reads.codes_of(7)
        noisy = plant_error(plant_error(original, 20), 70)
        fixed, changed, clean = corrector.correct_read(noisy)
        assert clean and changed == 2
        assert (fixed == original).all()

    def test_garbage_read_uncorrectable(self, clean_world):
        _, _, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        alien = random_genome(100, np.random.default_rng(12345))
        _, _, clean = corrector.correct_read(alien)
        assert not clean

    def test_short_read_left_alone(self, clean_world):
        _, _, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        short = np.array([0, 1, 2, 3], dtype=np.uint8)
        codes, changed, clean = corrector.correct_read(short)
        assert changed == 0 and clean

    def test_max_corrections_cap(self, clean_world):
        _, reads, spectrum = clean_world
        corrector = ReadCorrector(spectrum, max_corrections_per_read=1)
        original = reads.codes_of(9)
        noisy = plant_error(plant_error(original, 20), 70)
        _, changed, clean = corrector.correct_read(noisy)
        assert changed <= 1
        assert not clean  # one fix is not enough

    def test_invalid_config(self, clean_world):
        _, _, spectrum = clean_world
        with pytest.raises(ValueError):
            ReadCorrector(spectrum, max_corrections_per_read=0)


class TestCorrectReadSet:
    def test_stats_accounting(self, clean_world):
        _, reads, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        # corrupt every 10th read
        from repro.io.records import Read

        noisy_reads = []
        for i in range(60):
            codes = reads.codes_of(i).copy()
            if i % 10 == 0:
                codes = plant_error(codes, 50)
            noisy_reads.append(Read(reads.ids[i], codes, meta=reads.meta[i]))
        rs = ReadSet(noisy_reads)
        fixed, stats = corrector.correct_readset(rs)
        assert stats.n_reads == 60
        assert stats.n_corrected == 6
        assert stats.n_bases_changed == 6
        assert stats.n_clean == 54
        assert len(fixed) == 60

    def test_drop_uncorrectable(self, clean_world):
        _, reads, spectrum = clean_world
        corrector = ReadCorrector(spectrum)
        from repro.io.records import Read

        alien = Read("alien", random_genome(100, np.random.default_rng(77)))
        rs = ReadSet([reads[0], alien])
        fixed, stats = corrector.correct_readset(rs, drop_uncorrectable=True)
        assert len(fixed) == 1
        assert stats.n_uncorrectable == 1

    def test_end_to_end_improves_error_assembly(self):
        # simulate errory reads; correction should reduce weak k-mers
        g = Genome("g", random_genome(3000, np.random.default_rng(9)))
        sim = ReadSimulator(
            ReadSimConfig(read_length=100, coverage=15, seed=9, flat_error_rate=0.005)
        )
        reads = sim.simulate_genome(g)
        spectrum = KmerSpectrum(reads, k=21, threshold=3)
        corrector = ReadCorrector(spectrum)
        fixed, stats = corrector.correct_readset(reads)
        assert stats.n_corrected > 0
        # weak-window mass decreases after correction
        before = sum(
            int(corrector._weak_windows(reads.codes_of(i)).sum()) for i in range(len(reads))
        )
        after = sum(
            int(corrector._weak_windows(fixed.codes_of(i)).sum()) for i in range(len(fixed))
        )
        assert after < before
