"""Tests for the k-mer spectrum."""

import numpy as np
import pytest

from repro.correct.spectrum import KmerSpectrum
from repro.io.readset import ReadSet
from repro.sequence.dna import decode
from repro.sequence.kmers import canonical_kmer_codes, pack_kmer
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def coverage_reads(genome_len=2000, coverage=10, seed=0, error=0.0):
    g = Genome("g", random_genome(genome_len, np.random.default_rng(seed)))
    sim = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=coverage, seed=seed, flat_error_rate=error)
    )
    return g, sim.simulate_genome(g)


class TestKmerSpectrum:
    def test_counts_simple(self):
        # sequence chosen so no window is another's reverse complement
        rs = ReadSet.from_strings(["AAACCCAT", "AAACCCAT"])
        spec = KmerSpectrum(rs, k=5, threshold=2)
        vals = canonical_kmer_codes(rs.codes_of(0), 5)
        assert (spec.counts_of(vals) == 2).all()

    def test_count_absent(self):
        rs = ReadSet.from_strings(["AAAAAA"])
        spec = KmerSpectrum(rs, k=4, threshold=1)
        from repro.sequence.dna import encode

        missing = min(pack_kmer(encode("CCCC")), pack_kmer(encode("GGGG")))
        assert spec.count(missing) == 0

    def test_canonical_counting(self):
        # a read and its revcomp contribute to the same canonical k-mers
        rs = ReadSet.from_strings(["ACGTAG", "CTACGT"])
        spec = KmerSpectrum(rs, k=6, threshold=1)
        assert spec.n_distinct == 1
        assert spec.counts[0] == 2

    def test_threshold_estimation_bimodal(self):
        # 10x coverage + errors: valley between error peak and main peak
        _, reads = coverage_reads(coverage=12, error=0.01, seed=3)
        spec = KmerSpectrum(reads, k=21)
        assert 2 <= spec.threshold <= 6

    def test_solid_fraction_high_for_clean_reads(self):
        _, reads = coverage_reads(coverage=10, error=0.0, seed=1)
        spec = KmerSpectrum(reads, k=21, threshold=3)
        assert spec.n_solid > 0.85 * spec.n_distinct

    def test_errors_create_weak_kmers(self):
        _, clean = coverage_reads(coverage=10, error=0.0, seed=2)
        _, noisy = coverage_reads(coverage=10, error=0.01, seed=2)
        s_clean = KmerSpectrum(clean, k=21, threshold=3)
        s_noisy = KmerSpectrum(noisy, k=21, threshold=3)
        frac_clean = s_clean.n_solid / s_clean.n_distinct
        frac_noisy = s_noisy.n_solid / s_noisy.n_distinct
        assert frac_noisy < frac_clean

    def test_histogram_total(self):
        rs = ReadSet.from_strings(["ACGTACGTAC"])
        spec = KmerSpectrum(rs, k=5, threshold=1)
        assert spec.histogram().sum() == spec.n_distinct

    def test_empty_readset(self):
        spec = KmerSpectrum(ReadSet.from_strings([]), k=5, threshold=2)
        assert spec.n_distinct == 0
        assert spec.counts_of(np.array([3, -1])).tolist() == [0, 0]

    def test_invalid_params(self):
        rs = ReadSet.from_strings(["ACGT"])
        with pytest.raises(ValueError):
            KmerSpectrum(rs, k=0)
        with pytest.raises(ValueError):
            KmerSpectrum(rs, k=3, threshold=0)
