"""Tests for the de Bruijn baseline assembler."""

import numpy as np
import pytest

from repro.baselines.debruijn import DeBruijnAssembler, DeBruijnConfig
from repro.io.readset import ReadSet
from repro.sequence.dna import decode, reverse_complement
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def tiled_reads(genome, read_len=60, stride=20):
    seqs = [
        decode(genome[s : s + read_len])
        for s in range(0, len(genome) - read_len + 1, stride)
    ]
    return ReadSet.from_strings(seqs)


class TestDeBruijnConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            DeBruijnConfig(k=1)
        with pytest.raises(ValueError):
            DeBruijnConfig(k=40)
        with pytest.raises(ValueError):
            DeBruijnConfig(min_count=0)


class TestDeBruijnAssembler:
    def test_perfect_reads_reconstruct_genome(self):
        genome = random_genome(1500, np.random.default_rng(4))
        reads = tiled_reads(genome)
        asm = DeBruijnAssembler(DeBruijnConfig(k=21, min_count=1, min_contig_length=50))
        contigs, stats = asm.assemble(reads)
        assert stats.n_contigs == 1
        assert decode(contigs[0]) == decode(genome)

    def test_kmer_counts(self):
        reads = ReadSet.from_strings(["ACGTA", "ACGTA"])
        asm = DeBruijnAssembler(DeBruijnConfig(k=4, min_count=1))
        counts = asm.count_kmers(reads)
        assert all(v == 2 for v in counts.values())
        assert len(counts) == 2  # ACGT and CGTA

    def test_error_kmers_filtered(self):
        genome = random_genome(800, np.random.default_rng(5))
        clean = tiled_reads(genome, stride=10)
        # add one error-containing read
        bad = decode(genome[:60])
        bad = ("A" if bad[30] != "A" else "C").join([bad[:30], bad[31:]])
        reads = ReadSet.from_strings([clean.sequence_of(i) for i in range(len(clean))] + [bad])
        asm = DeBruijnAssembler(DeBruijnConfig(k=21, min_count=2, min_contig_length=50))
        contigs, stats = asm.assemble(reads)
        # The erroneous k-mers are filtered, so the backbone stays one
        # contig; genome *ends* are covered once only and also drop out.
        assert stats.n_contigs == 1
        assert decode(contigs[0]) in decode(genome)
        assert contigs[0].size >= 700

    def test_repeat_breaks_contigs(self):
        rng = np.random.default_rng(6)
        a = random_genome(400, rng)
        rep = random_genome(100, rng)
        b = random_genome(400, rng)
        c = random_genome(400, rng)
        genome = np.concatenate([a, rep, b, rep, c])
        reads = tiled_reads(genome, read_len=60, stride=15)
        asm = DeBruijnAssembler(DeBruijnConfig(k=21, min_count=1, min_contig_length=30))
        _, stats = asm.assemble(reads)
        # the shared 100bp repeat (> k) must fragment the assembly
        assert stats.n_contigs > 1

    def test_simulated_reads_with_errors(self):
        g = Genome("g", random_genome(3000, np.random.default_rng(7)))
        sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=20, seed=7))
        reads = sim.simulate_genome(g).with_reverse_complements()
        asm = DeBruijnAssembler(DeBruijnConfig(k=25, min_count=3, min_contig_length=100))
        contigs, stats = asm.assemble(reads)
        assert stats.total_bases > 0.5 * len(g)
        fwd = decode(g.codes)
        rc = decode(reverse_complement(g.codes))
        big = decode(max(contigs, key=lambda c: c.size))
        assert big in fwd or big in rc

    def test_min_contig_length_filter(self):
        reads = ReadSet.from_strings(["ACGTACGTAA"])
        asm = DeBruijnAssembler(DeBruijnConfig(k=4, min_count=1, min_contig_length=100))
        contigs, stats = asm.assemble(reads)
        assert contigs == [] and stats.n_contigs == 0
