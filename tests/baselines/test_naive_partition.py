"""Tests for the naive partitioner baselines."""

import numpy as np
import pytest

from repro.baselines.naive_partition import bfs_block_partition, hash_partition
from repro.partition.metrics import edge_cut, partition_node_weights
from tests.partition.conftest import two_cliques


class TestHashPartition:
    def test_labels_in_range(self):
        labels = hash_partition(100, 4, seed=0)
        assert labels.min() >= 0 and labels.max() < 4

    def test_deterministic(self):
        assert (hash_partition(50, 4, seed=1) == hash_partition(50, 4, seed=1)).all()

    def test_roughly_uniform(self):
        labels = hash_partition(4000, 4, seed=2)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() > 800

    def test_validation(self):
        with pytest.raises(ValueError):
            hash_partition(10, 0)
        with pytest.raises(ValueError):
            hash_partition(-1, 2)


class TestBfsBlockPartition:
    def test_balanced_blocks(self):
        g = two_cliques(n_each=8)
        labels = bfs_block_partition(g, 2)
        assert partition_node_weights(g, labels, 2).tolist() == [8, 8]

    def test_respects_connectivity_better_than_hash(self):
        g = two_cliques(n_each=10)
        bfs_cut = edge_cut(g, bfs_block_partition(g, 2))
        hash_cut = edge_cut(g, hash_partition(g.n_nodes, 2, seed=0))
        assert bfs_cut < hash_cut

    def test_empty_graph(self):
        from repro.graph.overlap_graph import OverlapGraph

        g = OverlapGraph(0, np.array([]), np.array([]), np.array([]))
        assert bfs_block_partition(g, 2).size == 0

    def test_k_one(self):
        g = two_cliques()
        assert (bfs_block_partition(g, 1) == 0).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            bfs_block_partition(two_cliques(), 0)
