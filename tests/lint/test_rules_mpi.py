"""True-positive / true-negative fixtures for MPI001, MPI002, MPI003."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def findings(src, rule_id):
    return lint_source(
        textwrap.dedent(src), path="fixture.py", rules=select_rules([rule_id])
    )


class TestMPI001CollectiveSymmetry:
    def test_collective_under_rank_branch_flagged(self):
        fs = findings(
            """
            def fn(comm):
                if comm.rank == 0:
                    comm.bcast([1, 2, 3], root=0)
            """,
            "MPI001",
        )
        assert len(fs) == 1
        assert fs[0].rule == "MPI001"
        assert fs[0].severity is Severity.ERROR
        assert "bcast" in fs[0].message

    def test_collective_under_rank_alias_branch_flagged(self):
        fs = findings(
            """
            def fn(comm):
                me = comm.get_rank()
                if me != 0:
                    comm.barrier()
            """,
            "MPI001",
        )
        assert len(fs) == 1

    def test_collective_in_else_branch_flagged(self):
        fs = findings(
            """
            def fn(comm):
                if comm.rank == 0:
                    x = 1
                else:
                    x = comm.gather(2, root=0)
            """,
            "MPI001",
        )
        assert len(fs) == 1

    def test_symmetric_collective_after_rank_branch_clean(self):
        # The repo's canonical pattern: rank-0-only compute between two
        # collectives that every rank reaches.
        fs = findings(
            """
            def trim(comm, dag):
                gathered = comm.gather([1], root=0)
                removed = None
                if comm.rank == 0:
                    removed = len(gathered)
                return comm.bcast(removed, root=0)
            """,
            "MPI001",
        )
        assert fs == []

    def test_point_to_point_under_rank_branch_clean(self):
        # send/recv under a rank branch is the normal SPMD idiom.
        fs = findings(
            """
            def fn(comm):
                if comm.rank == 0:
                    comm.send(1, dest=1)
                else:
                    comm.recv(source=0)
            """,
            "MPI001",
        )
        assert fs == []

    def test_function_without_comm_clean(self):
        fs = findings(
            """
            def fn(comm: str, rank=0):
                if rank == 0:
                    comm.bcast(1)
            """,
            "MPI001",
        )
        assert fs == []


class TestMPI002ReservedTag:
    def test_literal_reserved_tag_keyword_flagged(self):
        fs = findings(
            """
            def fn(comm):
                comm.send("x", dest=1, tag=-1000)
            """,
            "MPI002",
        )
        assert len(fs) == 1
        assert "-1000" in fs[0].message

    def test_literal_reserved_tag_positional_flagged(self):
        fs = findings(
            """
            def fn(comm):
                comm.recv(0, -1234)
            """,
            "MPI002",
        )
        assert len(fs) == 1

    def test_collective_private_tag_override_flagged(self):
        fs = findings(
            """
            def fn(comm):
                comm.bcast(1, root=0, _tag=-2000)
            """,
            "MPI002",
        )
        assert len(fs) == 1

    def test_user_tag_space_clean(self):
        fs = findings(
            """
            def fn(comm):
                comm.send("x", dest=1, tag=0)
                comm.send("y", dest=1, tag=42)
                comm.recv(1, tag=-999)
            """,
            "MPI002",
        )
        assert fs == []

    def test_symbolic_tag_clean(self):
        # Names are not literals: the runtime's own internal tags pass.
        fs = findings(
            """
            BASE = -1000
            def fn(comm, _tag=BASE):
                comm.send("x", dest=1, tag=_tag)
            """,
            "MPI002",
        )
        assert fs == []


class TestMPI003MutateAfterSend:
    def test_append_after_send_flagged(self):
        fs = findings(
            """
            def fn(comm):
                buf = [1, 2]
                comm.send(buf, dest=1)
                buf.append(3)
            """,
            "MPI003",
        )
        assert len(fs) == 1
        assert "buf" in fs[0].message

    def test_subscript_write_after_isend_flagged(self):
        fs = findings(
            """
            def fn(comm):
                table = {}
                req = comm.isend(table, dest=1)
                table["k"] = 1
                req.wait()
            """,
            "MPI003",
        )
        assert len(fs) == 1

    def test_augassign_after_send_flagged(self):
        fs = findings(
            """
            def fn(comm, arr):
                comm.send(arr, dest=1)
                arr += 1
            """,
            "MPI003",
        )
        assert len(fs) == 1

    def test_mutation_before_send_clean(self):
        fs = findings(
            """
            def fn(comm):
                buf = [1]
                buf.append(2)
                comm.send(buf, dest=1)
            """,
            "MPI003",
        )
        assert fs == []

    def test_rebinding_after_send_clean(self):
        # Rebinding the *name* leaves the sent object untouched.
        fs = findings(
            """
            def fn(comm):
                bucket = {0: 1}
                comm.send(bucket, dest=1)
                bucket = {}
                bucket.update({1: 2})
            """,
            "MPI003",
        )
        assert fs == []

    def test_mutating_a_different_name_clean(self):
        fs = findings(
            """
            def fn(comm):
                a, b = [1], [2]
                comm.send(a, dest=1)
                b.append(3)
            """,
            "MPI003",
        )
        assert fs == []


class TestReservedTagWindow:
    """MPI002's window is *derived* from the runtime, never hand-kept.

    This scans :mod:`repro.mpi.simcomm` for every internal collective
    tag expression (``_COLLECTIVE_TAG_BASE - k``).  If a new collective
    is added with an offset outside the declared span, this test fails
    before the lint rule can drift out of sync with the runtime.
    """

    @staticmethod
    def _claimed_tags():
        import ast
        import inspect

        from repro.mpi import simcomm

        base_names = {"_COLLECTIVE_TAG_BASE", "COLLECTIVE_TAG_BASE"}
        tree = ast.parse(inspect.getsource(simcomm))
        claimed = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id in base_names:
                claimed.append((simcomm.COLLECTIVE_TAG_BASE, node.lineno))
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Sub)
                and isinstance(node.left, ast.Name)
                and node.left.id in base_names
                and isinstance(node.right, ast.Constant)
                and type(node.right.value) is int
            ):
                claimed.append(
                    (simcomm.COLLECTIVE_TAG_BASE - node.right.value, node.lineno)
                )
        return claimed

    def test_every_internal_tag_inside_declared_window(self):
        from repro.lint.rules.mpi import RESERVED_TAG_CEILING, RESERVED_TAG_FLOOR

        claimed = self._claimed_tags()
        assert claimed, "simcomm should use the shared tag base"
        for tag, lineno in claimed:
            assert RESERVED_TAG_FLOOR <= tag <= RESERVED_TAG_CEILING, (
                f"simcomm.py:{lineno} claims collective tag {tag}, outside "
                f"the declared window [{RESERVED_TAG_FLOOR}, "
                f"{RESERVED_TAG_CEILING}] — bump COLLECTIVE_TAG_SPAN "
                "alongside the new collective"
            )

    def test_rule_constants_come_from_the_runtime(self):
        from repro.lint.rules.mpi import RESERVED_TAG_CEILING, RESERVED_TAG_FLOOR
        from repro.mpi.simcomm import COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_SPAN

        assert RESERVED_TAG_CEILING == COLLECTIVE_TAG_BASE
        assert RESERVED_TAG_FLOOR == COLLECTIVE_TAG_BASE - (COLLECTIVE_TAG_SPAN - 1)

    def test_window_message_cites_the_window(self):
        from repro.lint.rules.mpi import RESERVED_TAG_CEILING, RESERVED_TAG_FLOOR

        fs = findings(
            """
            def fn(comm):
                comm.send("x", 1, tag=-1004)
            """,
            "MPI002",
        )
        assert len(fs) == 1
        assert f"[{RESERVED_TAG_FLOOR}, {RESERVED_TAG_CEILING}]" in fs[0].message
