"""True-positive / true-negative fixtures for ARCH001."""

import textwrap

from repro.lint import Severity, lint_source, select_rules

KERNEL_WITH_MPI = """
from repro.mpi import SimCluster

def trim_kernel(dag, part):
    return []
"""


def arch_findings(src, path="src/repro/distributed/fixture.py"):
    return lint_source(
        textwrap.dedent(src), path=path, rules=select_rules(["ARCH001"])
    )


class TestARCH001KernelImportsMpi:
    def test_kernel_module_importing_mpi_flagged(self):
        fs = arch_findings(KERNEL_WITH_MPI)
        assert len(fs) == 1
        assert fs[0].rule == "ARCH001"
        assert fs[0].severity is Severity.ERROR
        assert "backend-agnostic" in fs[0].message

    def test_plain_import_flagged(self):
        fs = arch_findings(
            """
            import repro.mpi.cluster

            def trim_kernel(dag, part):
                return []
            """
        )
        assert len(fs) == 1

    def test_from_repro_import_mpi_flagged(self):
        fs = arch_findings(
            """
            from repro import mpi

            def trim_kernel(dag, part):
                return []
            """
        )
        assert len(fs) == 1

    def test_every_mpi_import_reported(self):
        fs = arch_findings(
            """
            from repro.mpi import SimCluster
            from repro.mpi.timing import CommCostModel

            def trim_kernel(dag, part):
                return []
            """
        )
        assert len(fs) == 2

    def test_driver_module_without_kernels_clean(self):
        # Orchestration modules may import mpi freely.
        fs = arch_findings(
            """
            from repro.mpi import SimCluster

            def run_parallel(cluster, dag):
                return cluster.run(lambda comm, d: None, dag)
            """
        )
        assert fs == []

    def test_kernel_module_without_mpi_clean(self):
        fs = arch_findings(
            """
            import numpy as np

            def trim_kernel(dag, part):
                return np.empty(0, dtype=np.int64)
            """
        )
        assert fs == []

    def test_outside_distributed_package_clean(self):
        fs = arch_findings(KERNEL_WITH_MPI, path="src/repro/mpi/fixture.py")
        assert fs == []

    def test_windows_path_separators_normalized(self):
        fs = arch_findings(
            KERNEL_WITH_MPI, path="src\\repro\\distributed\\fixture.py"
        )
        assert len(fs) == 1

    def test_noqa_suppresses(self):
        fs = arch_findings(
            """
            from repro.mpi import SimCluster  # noqa: ARCH001 - adapter shim

            def trim_kernel(dag, part):
                return []
            """
        )
        assert fs == []

    def test_shipped_kernel_modules_are_clean(self):
        # The real stage modules must satisfy their own rule.
        from pathlib import Path

        from repro.lint import lint_paths

        repo = Path(__file__).resolve().parents[2]
        findings = [
            f
            for f in lint_paths([repo / "src" / "repro" / "distributed"])
            if f.rule == "ARCH001"
        ]
        assert findings == []
