"""PURE001 / PURE002 / ARCH002: interprocedural kernel-purity rules.

Fixtures build small on-disk packages (``__init__.py`` included) so
the project context resolves imports exactly as it does on the real
tree, including the cross-module kernel -> helper case the per-file
rules can never see.
"""

import textwrap

import pytest

from repro.lint import lint_paths, select_rules

PURITY = select_rules(["PURE001", "PURE002"])
CONTRACT = select_rules(["ARCH002"])


def _pkg(tmp_path, **modules):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, src in modules.items():
        (pkg / f"{name}.py").write_text(textwrap.dedent(src))
    return pkg


class TestPure001:
    def test_direct_param_mutation(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            def bad_kernel(dag, part):
                dag.node_alive[0] = False
                return []
            """,
        )
        fs = lint_paths([pkg], rules=PURITY)
        assert [f.rule for f in fs] == ["PURE001"]
        assert "mutates its parameter `dag`" in fs[0].message
        assert fs[0].path.endswith("kern.py")

    def test_cross_module_helper_mutation(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            from pkg.helpers import mark_visited

            def bad_kernel(dag, part):
                mark_visited(dag, part)
                return []
            """,
            helpers="""
            def mark_visited(dag, part):
                dag.node_alive[part] = False
            """,
        )
        fs = lint_paths([pkg], rules=PURITY)
        assert [f.rule for f in fs] == ["PURE001"]
        # the witness names the helper chain and the mutation site
        assert "via `mark_visited`" in fs[0].message
        assert "helpers.py:3" in fs[0].message
        # but the finding anchors at the kernel def, in the kernel's file
        assert fs[0].path.endswith("kern.py")

    def test_module_global_mutation(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            CACHE = {}

            def bad_kernel(dag, part):
                CACHE[part] = dag
                return []
            """,
        )
        fs = lint_paths([pkg], rules=PURITY)
        assert [f.rule for f in fs] == ["PURE001"]
        assert "module global `CACHE`" in fs[0].message

    def test_graph_mutating_method(self, tmp_path):
        # applying removals instead of proposing them
        pkg = _pkg(
            tmp_path,
            kern="""
            def eager_kernel(dag, part):
                dag.remove_edges([1, 2])
                return []
            """,
        )
        fs = lint_paths([pkg], rules=PURITY)
        assert [f.rule for f in fs] == ["PURE001"]

    def test_clean_proposal_kernel_passes(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            def good_kernel(dag, part):
                out = []
                for e in dag.partition_edges(part):
                    out.append(e)
                return out
            """,
        )
        assert lint_paths([pkg], rules=PURITY) == []

    def test_fresh_scratch_passed_to_mutating_helper_passes(self, tmp_path):
        # the subpath_kernel idiom: kernel-local scratch may be mutated
        pkg = _pkg(
            tmp_path,
            kern="""
            from pkg.walk import extract

            def path_kernel(dag, part):
                visited = [False] * 10
                return extract(dag, part, visited)
            """,
            walk="""
            def extract(dag, part, visited):
                visited[part] = True
                return visited
            """,
        )
        assert lint_paths([pkg], rules=PURITY) == []

    def test_copy_then_mutate_passes(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            def relabel_kernel(dag, labels):
                labels = labels.copy()
                labels[0] = 1
                return labels
            """,
        )
        assert lint_paths([pkg], rules=PURITY) == []

    def test_non_kernel_mutator_is_not_flagged(self, tmp_path):
        # only *_kernel functions carry the purity contract
        pkg = _pkg(
            tmp_path,
            merges="""
            def apply_merge(dag, proposals):
                dag.remove_edges(proposals)
            """,
        )
        assert lint_paths([pkg], rules=PURITY) == []


class TestPure002:
    @pytest.mark.parametrize(
        "body, label",
        [
            ("import random\n\n\ndef k_kernel(dag, part):\n    return random.random()\n", "RNG"),
            ("import time\n\n\ndef k_kernel(dag, part):\n    return time.time()\n", "wall-clock"),
            (
                "from pathlib import Path\n\n\ndef k_kernel(dag, part):\n"
                "    return Path('x').read_text()\n",
                "I/O",
            ),
        ],
    )
    def test_direct_ambient_effects(self, tmp_path, body, label):
        pkg = _pkg(tmp_path, kern=body)
        fs = lint_paths([pkg], rules=PURITY)
        assert [f.rule for f in fs] == ["PURE002"]
        assert label in fs[0].message

    def test_cross_module_clock(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            from pkg.util import stamp

            def timed_kernel(dag, part):
                return stamp()
            """,
            util="""
            import time

            def stamp():
                return time.perf_counter()
            """,
        )
        fs = lint_paths([pkg], rules=PURITY)
        assert [f.rule for f in fs] == ["PURE002"]
        assert "via `stamp`" in fs[0].message

    def test_seeded_rng_passes(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            import numpy as np

            def sample_kernel(dag, part, seed=0):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10, size=4)
            """,
        )
        assert lint_paths([pkg], rules=PURITY) == []

    def test_noqa_on_kernel_def_suppresses(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kern="""
            import time


            def slow_kernel(dag, part):  # noqa: PURE002
                return time.time()
            """,
        )
        assert lint_paths([pkg], rules=PURITY) == []


class TestArch002:
    def _registration(self, tmp_path, call, extra=""):
        src = textwrap.dedent(
            """
            from repro.distributed.stages import register_stage


            def trim_kernel(dag, part, **params):
                return []


            def trim_merge(dag, proposals, **params):
                return 0
            """
        )
        if extra:
            src += "\n" + textwrap.dedent(extra).strip() + "\n"
        src += "\n" + call + "\n"
        return _pkg(tmp_path, stages=src)

    def test_conforming_registration_passes(self, tmp_path):
        pkg = self._registration(
            tmp_path, 'register_stage("trim", trim_kernel, trim_merge)'
        )
        assert lint_paths([pkg], rules=CONTRACT) == []

    def test_lambda_kernel_flagged(self, tmp_path):
        pkg = self._registration(
            tmp_path, 'register_stage("trim", lambda d, p: [], trim_merge)'
        )
        fs = lint_paths([pkg], rules=CONTRACT)
        assert [f.rule for f in fs] == ["ARCH002"]
        assert "lambda" in fs[0].message

    def test_misnamed_kernel_flagged(self, tmp_path):
        pkg = self._registration(
            tmp_path,
            'register_stage("trim", do_trim, trim_merge)',
            extra="""
            def do_trim(dag, part, **params):
                return []
            """,
        )
        fs = lint_paths([pkg], rules=CONTRACT)
        assert [f.rule for f in fs] == ["ARCH002"]
        assert "not named `*_kernel`" in fs[0].message

    def test_arity_violations_flagged(self, tmp_path):
        pkg = self._registration(
            tmp_path,
            'register_stage("trim", thin_kernel, merge=thin_merge)',
            extra="""
            def thin_kernel(dag, **params):
                return []

            def thin_merge(dag):
                return 0
            """,
        )
        fs = lint_paths([pkg], rules=CONTRACT)
        assert [f.rule for f in fs] == ["ARCH002", "ARCH002"]
        assert "kernel(dag, part, **params)" in fs[0].message
        assert "merge(dag, proposals, **params)" in fs[1].message

    def test_keyword_arguments_resolved(self, tmp_path):
        pkg = self._registration(
            tmp_path,
            'register_stage("trim", kernel=trim_kernel, merge=lambda *a: 0)',
        )
        fs = lint_paths([pkg], rules=CONTRACT)
        assert [f.rule for f in fs] == ["ARCH002"]
        assert "merge is a lambda" in fs[0].message

    def test_cross_module_kernel_resolved(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            kernels="""
            def trim(dag, part, **params):
                return []
            """,
            wiring="""
            from repro.distributed.stages import register_stage

            from pkg.kernels import trim


            def merge(dag, proposals, **params):
                return 0


            register_stage("trim", trim, merge)
            """,
        )
        fs = lint_paths([pkg], rules=CONTRACT)
        assert [f.rule for f in fs] == ["ARCH002"]
        assert "not named `*_kernel`" in fs[0].message
        assert fs[0].path.endswith("wiring.py")

    def test_unresolvable_callable_skipped(self, tmp_path):
        # dynamically built callables cannot be verified: stay silent
        pkg = self._registration(
            tmp_path,
            'register_stage("trim", make_kernel(), trim_merge)',
            extra="""
            def make_kernel():
                return trim_kernel
            """,
        )
        assert lint_paths([pkg], rules=CONTRACT) == []
