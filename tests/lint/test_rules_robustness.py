"""True-positive / true-negative fixtures for ROB001."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def rob_findings(src, path="src/repro/fixture.py"):
    return lint_source(
        textwrap.dedent(src), path=path, rules=select_rules(["ROB001"])
    )


class TestROB001SwallowedException:
    def test_bare_except_pass_flagged(self):
        fs = rob_findings(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "ROB001"
        assert fs[0].severity is Severity.ERROR
        assert "does nothing" in fs[0].message

    def test_except_exception_pass_flagged(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception:
                pass
            """
        )
        assert len(fs) == 1

    def test_except_exception_as_name_ellipsis_flagged(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception as exc:
                ...
            """
        )
        assert len(fs) == 1

    def test_base_exception_in_tuple_flagged(self):
        fs = rob_findings(
            """
            try:
                work()
            except (ValueError, BaseException):
                pass
            """
        )
        assert len(fs) == 1

    def test_narrow_except_pass_clean(self):
        # Swallowing a specific anticipated error is a decision.
        fs = rob_findings(
            """
            try:
                os.remove(tmp)
            except OSError:
                pass
            """
        )
        assert fs == []

    def test_broad_except_with_handling_clean(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception as exc:
                log.warning("work failed: %s", exc)
            """
        )
        assert fs == []

    def test_broad_except_reraise_clean(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception:
                cleanup()
                raise
            """
        )
        assert fs == []

    def test_docstring_only_body_flagged(self):
        # A bare string "explains" but still erases the failure.
        fs = rob_findings(
            '''
            try:
                work()
            except Exception:
                "best effort"
            '''
        )
        assert len(fs) == 1

    def test_noqa_suppresses(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception:  # noqa: ROB001 - probed feature detection
                pass
            """
        )
        assert fs == []

    def test_shipped_sources_are_clean(self):
        # The fault-tolerance PR's own code must satisfy its own rule.
        from pathlib import Path

        from repro.lint import lint_paths

        repo = Path(__file__).resolve().parents[2]
        findings = [
            f
            for f in lint_paths([repo / "src" / "repro"])
            if f.rule == "ROB001"
        ]
        assert findings == []
