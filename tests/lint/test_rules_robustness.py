"""True-positive / true-negative fixtures for ROB001 and ROB002."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def rob_findings(src, path="src/repro/fixture.py", rule="ROB001"):
    return lint_source(
        textwrap.dedent(src), path=path, rules=select_rules([rule])
    )


class TestROB001SwallowedException:
    def test_bare_except_pass_flagged(self):
        fs = rob_findings(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "ROB001"
        assert fs[0].severity is Severity.ERROR
        assert "does nothing" in fs[0].message

    def test_except_exception_pass_flagged(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception:
                pass
            """
        )
        assert len(fs) == 1

    def test_except_exception_as_name_ellipsis_flagged(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception as exc:
                ...
            """
        )
        assert len(fs) == 1

    def test_base_exception_in_tuple_flagged(self):
        fs = rob_findings(
            """
            try:
                work()
            except (ValueError, BaseException):
                pass
            """
        )
        assert len(fs) == 1

    def test_narrow_except_pass_clean(self):
        # Swallowing a specific anticipated error is a decision.
        fs = rob_findings(
            """
            try:
                os.remove(tmp)
            except OSError:
                pass
            """
        )
        assert fs == []

    def test_broad_except_with_handling_clean(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception as exc:
                log.warning("work failed: %s", exc)
            """
        )
        assert fs == []

    def test_broad_except_reraise_clean(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception:
                cleanup()
                raise
            """
        )
        assert fs == []

    def test_docstring_only_body_flagged(self):
        # A bare string "explains" but still erases the failure.
        fs = rob_findings(
            '''
            try:
                work()
            except Exception:
                "best effort"
            '''
        )
        assert len(fs) == 1

    def test_noqa_suppresses(self):
        fs = rob_findings(
            """
            try:
                work()
            except Exception:  # noqa: ROB001 - probed feature detection
                pass
            """
        )
        assert fs == []

    def test_shipped_sources_are_clean(self):
        # The fault-tolerance PR's own code must satisfy its own rule.
        from pathlib import Path

        from repro.lint import lint_paths

        repo = Path(__file__).resolve().parents[2]
        findings = [
            f
            for f in lint_paths([repo / "src" / "repro"])
            if f.rule == "ROB001"
        ]
        assert findings == []


def poll_findings(src):
    return rob_findings(src, rule="ROB002")


class TestROB002UnboundedPollLoop:
    def test_while_true_sleep_flagged(self):
        fs = poll_findings(
            """
            import time

            def watch(store):
                while True:
                    store.poll()
                    time.sleep(1.0)
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "ROB002"
        assert fs[0].severity is Severity.ERROR
        assert "hangs" in fs[0].message

    def test_bare_sleep_name_flagged(self):
        fs = poll_findings(
            """
            from time import sleep

            while True:
                check()
                sleep(0.1)
            """
        )
        assert len(fs) == 1

    def test_while_1_flagged(self):
        fs = poll_findings(
            """
            import time

            while 1:
                time.sleep(5)
            """
        )
        assert len(fs) == 1

    def test_break_escape_clean(self):
        fs = poll_findings(
            """
            import time

            def wait(q):
                while True:
                    if q.ready():
                        break
                    time.sleep(0.1)
            """
        )
        assert fs == []

    def test_return_escape_clean(self):
        fs = poll_findings(
            """
            import time

            def wait(q):
                while True:
                    if q.ready():
                        return q.value
                    time.sleep(0.1)
            """
        )
        assert fs == []

    def test_raise_on_deadline_clean(self):
        fs = poll_findings(
            """
            import time

            def wait(q, deadline):
                while True:
                    if time.time() > deadline:
                        raise TimeoutError
                    time.sleep(0.1)
            """
        )
        assert fs == []

    def test_bounded_condition_clean(self):
        fs = poll_findings(
            """
            import time

            def wait(deadline):
                while time.time() < deadline:
                    time.sleep(0.1)
            """
        )
        assert fs == []

    def test_no_sleep_clean(self):
        # A while-True without sleeping is a spin/worker loop, not a
        # poll loop; other mechanisms (deadlines, watchdogs) bound it.
        fs = poll_findings(
            """
            while True:
                item = queue.get()
                handle(item)
            """
        )
        assert fs == []

    def test_break_in_nested_loop_still_flagged(self):
        # The break belongs to the inner for loop; the outer while
        # True can still never end.
        fs = poll_findings(
            """
            import time

            def watch(jobs):
                while True:
                    for j in jobs:
                        if j.done:
                            break
                    time.sleep(1.0)
            """
        )
        assert len(fs) == 1

    def test_return_inside_nested_def_still_flagged(self):
        # The return ends the nested function, not the loop.
        fs = poll_findings(
            """
            import time

            def watch(jobs):
                while True:
                    def probe():
                        return jobs.ready()
                    probe()
                    time.sleep(1.0)
            """
        )
        assert len(fs) == 1

    def test_escape_inside_try_clean(self):
        fs = poll_findings(
            """
            import time

            def wait(q):
                while True:
                    try:
                        q.check()
                    except QueueDone:
                        break
                    time.sleep(0.1)
            """
        )
        assert fs == []

    def test_noqa_suppresses(self):
        fs = poll_findings(
            """
            import time

            while True:  # noqa: ROB002 - daemon loop, killed with process
                beat()
                time.sleep(1.0)
            """
        )
        assert fs == []

    def test_shipped_sources_are_clean(self):
        # The service PR's own poll loops must satisfy its own rule.
        from pathlib import Path

        from repro.lint import lint_paths

        repo = Path(__file__).resolve().parents[2]
        findings = [
            f
            for f in lint_paths([repo / "src" / "repro"])
            if f.rule == "ROB002"
        ]
        assert findings == []
