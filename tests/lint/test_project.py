"""Whole-program context: symbol table, call graph, effect summaries."""

import textwrap

from repro.lint import FileContext, ProjectContext, summarize_file
from repro.lint.project import module_name_for


def _summary(src, path="mod.py", module=None):
    ctx = FileContext.from_source(textwrap.dedent(src), path=path)
    return summarize_file(ctx, module=module)


def _project(*file_specs):
    """Build a ProjectContext from (path, module, source) triples."""
    return ProjectContext(
        [_summary(src, path=path, module=module) for path, module, src in file_specs]
    )


class TestModuleNames:
    def test_package_walk(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert module_name_for(pkg / "mod.py") == "pkg.sub.mod"

    def test_init_file_names_the_package(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        assert module_name_for(pkg / "__init__.py") == "pkg"

    def test_bare_script_uses_stem(self, tmp_path):
        script = tmp_path / "script.py"
        script.write_text("x = 1\n")
        assert module_name_for(script) == "script"


class TestSummaries:
    def test_functions_and_qualnames(self):
        s = _summary(
            """
            def top():
                def inner():
                    pass

            class C:
                def method(self):
                    pass
            """
        )
        assert set(s.functions) == {"top", "top.<locals>.inner", "C.method"}
        assert s.functions["C.method"].is_method
        assert not s.functions["top.<locals>.inner"].is_module_level

    def test_param_mutation_effect(self):
        s = _summary(
            """
            def f(xs):
                xs.append(1)
            """
        )
        effects = s.functions["f"].effects
        assert any(e.kind == "mutates-param" and e.target == "xs" for e in effects)

    def test_rebind_kills_param_liveness(self):
        # the kway_refine idiom: copy, then mutate the copy freely
        s = _summary(
            """
            def f(labels):
                labels = labels.copy()
                labels[0] = 9
            """
        )
        assert not s.functions["f"].effects

    def test_augassign_does_not_mask_itself(self):
        s = _summary(
            """
            def f(xs):
                xs += [1]
            """
        )
        assert any(e.kind == "mutates-param" for e in s.functions["f"].effects)

    def test_global_statement_recorded(self):
        s = _summary(
            """
            COUNT = 0

            def bump():
                global COUNT
                COUNT += 1
            """
        )
        assert any(e.kind == "mutates-global" for e in s.functions["bump"].effects)


class TestCallGraph:
    PKG = [
        (
            "pkg/a.py",
            "pkg.a",
            """
            from pkg.b import helper

            def entry(x):
                return helper(x)
            """,
        ),
        (
            "pkg/b.py",
            "pkg.b",
            """
            def helper(x):
                return leaf(x)

            def leaf(x):
                return x + 1
            """,
        ),
    ]

    def test_cross_module_resolution(self):
        project = _project(*self.PKG)
        callee = project.resolve_call(project.functions["pkg.a.entry"], "helper")
        assert callee is not None and callee.fq == "pkg.b.helper"

    def test_reachable_from_is_transitive(self):
        project = _project(*self.PKG)
        assert project.reachable_from("pkg.a.entry") == {"pkg.b.helper", "pkg.b.leaf"}

    def test_unresolvable_call_returns_none(self):
        project = _project(*self.PKG)
        assert project.resolve_call(project.functions["pkg.a.entry"], "np.zeros") is None


class TestEffectPropagation:
    def test_param_mutation_propagates_through_argument(self):
        project = _project(
            (
                "pkg/a.py",
                "pkg.a",
                """
                from pkg.b import poke

                def caller(dag):
                    poke(dag)
                """,
            ),
            (
                "pkg/b.py",
                "pkg.b",
                """
                def poke(d):
                    d.node_alive[0] = False
                """,
            ),
        )
        summ = project.summary("pkg.a.caller")
        assert "dag" in summ.mutated_params
        via, effect, owner = summ.mutated_params["dag"]
        assert via == ("pkg.b.poke",)
        assert owner == "pkg.b.poke"

    def test_fresh_local_argument_does_not_propagate(self):
        # the subpath_kernel idiom: a scratch array created inside the
        # caller may be mutated by the callee without tainting params
        project = _project(
            (
                "pkg/a.py",
                "pkg.a",
                """
                from pkg.b import fill

                def caller(dag):
                    scratch = []
                    fill(scratch)
                    return scratch
                """,
            ),
            (
                "pkg/b.py",
                "pkg.b",
                """
                def fill(out):
                    out.append(1)
                """,
            ),
        )
        assert project.summary("pkg.a.caller").is_pure

    def test_ambient_effects_propagate_unconditionally(self):
        project = _project(
            (
                "pkg/a.py",
                "pkg.a",
                """
                from pkg.b import stamp

                def caller():
                    return stamp()
                """,
            ),
            (
                "pkg/b.py",
                "pkg.b",
                """
                import time

                def stamp():
                    return time.time()
                """,
            ),
        )
        assert "clock" in project.summary("pkg.a.caller").ambient

    def test_recursion_reaches_fixpoint(self):
        project = _project(
            (
                "m.py",
                "m",
                """
                def a(xs, n):
                    if n:
                        b(xs, n - 1)

                def b(xs, n):
                    xs.append(n)
                    a(xs, n)
                """,
            )
        )
        assert "xs" in project.summary("m.a").mutated_params

    def test_seeded_rng_is_not_ambient(self):
        project = _project(
            (
                "m.py",
                "m",
                """
                import numpy as np

                def draw(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
                """,
            )
        )
        assert project.summary("m.draw").is_pure
