"""Protocol extraction, simulation, and reporting unit tests.

These target the abstract interpreter directly: what events each rank
produces, how calls splice through the call graph, when the analysis
declares itself imprecise, and what the simulator concludes.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    analyze_protocols,
    build_project,
    format_protocol,
)
from repro.lint.protocol import simulate

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _analysis(tmp_path, **modules):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for mod, src in modules.items():
        (pkg / f"{mod}.py").write_text(textwrap.dedent(src))
    return analyze_protocols(build_project([pkg]))


class TestEventExtraction:
    def test_sendrecv_emits_both_kinds(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def ring(comm):
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                return comm.sendrecv(comm.rank, dest=right, source=left)
            """,
        )
        proto = ana.protocol_for("ring")
        assert proto.imprecise is None
        for rank, events in enumerate(proto.ranks):
            assert [e.kind for e in events] == ["send", "recv"]
            assert all(e.op == "sendrecv" for e in events)
            send, recv = events
            assert send.peer == (rank + 1) % proto.size
            assert recv.peer == (rank - 1) % proto.size

    def test_helper_events_attributed_via_call_graph(self, tmp_path):
        ana = _analysis(
            tmp_path,
            helpers="""
            def push(comm, value):
                comm.send(value, dest=1)
            """,
            driver="""
            from pkg.helpers import push

            def top(comm):
                if comm.rank == 0:
                    push(comm, "x")
                elif comm.rank == 1:
                    comm.recv(source=0)
            """,
        )
        proto = ana.protocol_for("top")
        assert proto.imprecise is None
        (send,) = proto.ranks[0]
        assert send.kind == "send" and send.peer == 1
        # the event belongs to the helper but carries the caller chain
        assert send.fq.endswith("push")
        assert send.via == ("pkg.driver.top",)
        # helpers called with the comm are not roots of their own
        assert not any(fq.endswith("push") for fq in ana.roots)

    def test_loop_over_range_comm_size(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fanout(comm):
                if comm.rank == 0:
                    for dest in range(1, comm.size):
                        comm.send(dest * 10, dest=dest)
                else:
                    return comm.recv(source=0)
            """,
        )
        proto = ana.protocol_for("fanout")
        assert proto.imprecise is None
        sends = proto.ranks[0]
        assert [e.peer for e in sends] == list(range(1, proto.size))
        out = simulate(proto)
        assert not out.deadlocked
        assert not out.unreceived

    def test_rank_arithmetic_is_folded(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def pair(comm):
                partner = comm.rank + 1 - 2 * (comm.rank % 2)
                if comm.rank % 2 == 0:
                    comm.send("even", dest=partner)
                else:
                    comm.recv(source=partner)
            """,
        )
        proto = ana.protocol_for("pair")
        assert proto.imprecise is None
        assert proto.ranks[0][0].peer == 1
        assert proto.ranks[1][0].peer == 0
        assert not simulate(proto).deadlocked


class TestImprecision:
    def test_data_dependent_branch_with_comm(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm, flag):
                if flag:
                    comm.send("x", dest=0)
            """,
        )
        proto = ana.protocol_for("fn")
        assert proto.imprecise is not None
        assert proto.ranks == []

    def test_comm_in_comprehension(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm):
                return [comm.recv(source=0) for _ in range(3)]
            """,
        )
        proto = ana.protocol_for("fn")
        assert proto.imprecise is not None
        assert "comprehension" in proto.imprecise

    def test_imprecise_drivers_produce_no_findings(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm, flag):
                if flag:
                    comm.recv(source=0)
            """,
        )
        fq = next(iter(ana.roots))
        assert ana.roots[fq].imprecise is not None
        assert fq not in ana.outcomes

    def test_comm_free_data_branch_is_fine(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm, flag):
                label = "on" if flag else "off"
                if flag:
                    label += "!"
                return comm.allgather(label)
            """,
        )
        proto = ana.protocol_for("fn")
        assert proto.imprecise is None
        assert all(e.op == "allgather" for events in proto.ranks for e in events)


class TestLaunchSizes:
    def test_cluster_literal_sets_model_size(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            from repro.mpi.cluster import SimCluster

            def two_rank(comm):
                if comm.rank == 0:
                    comm.send("x", dest=1)
                elif comm.rank == 1:
                    comm.recv(source=0)

            def launch():
                return SimCluster(2).run(two_rank)
            """,
        )
        proto = ana.protocol_for("two_rank")
        assert proto.size == 2
        out = simulate(proto)
        assert not out.deadlocked and not out.unreceived

    def test_unlaunched_driver_uses_default_size(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm):
                return comm.allgather(comm.rank)
            """,
        )
        assert ana.protocol_for("fn").size == ana.size >= 2


class TestSimulation:
    def test_deadlock_corpus_blocks_in_cycle(self):
        ana = analyze_protocols(build_project([FIXTURES / "proto_deadlock"]))
        (fq,) = [f for f in ana.roots if f.endswith("pairwise_swap")]
        out = ana.outcomes[fq]
        assert out.deadlocked
        assert out.cycles == [[0, 1]]
        assert set(out.blocked) == {0, 1}
        assert all(e.kind == "recv" for e in out.blocked.values())

    def test_clean_corpus_completes(self):
        ana = analyze_protocols(build_project([FIXTURES / "proto_clean"]))
        (fq,) = [f for f in ana.roots if f.endswith("clean_driver")]
        out = ana.outcomes[fq]
        assert not out.deadlocked
        assert not out.unreceived
        assert len(out.matched) == out.completed.count(out.completed[0]) and out.matched

    def test_collective_divergence_outcome(self, tmp_path):
        ana = _analysis(
            tmp_path,
            helper="""
            def sync(comm):
                return comm.barrier()
            """,
            mod="""
            from pkg.helper import sync

            def fn(comm):
                if comm.rank != 0:
                    sync(comm)
            """,
        )
        fq = next(iter(ana.outcomes))
        assert ana.outcomes[fq].collective_divergence


class TestReporting:
    def test_role_groups_collapse_identical_ranks(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm):
                if comm.rank == 0:
                    for src in range(1, comm.size):
                        comm.recv(source=src)
                else:
                    comm.send(comm.rank, dest=0)
            """,
        )
        proto = ana.protocol_for("fn")
        groups = proto.role_groups()
        assert [ranks for ranks, _ in groups] == [[0], list(range(1, proto.size))]

    def test_text_report_shape(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm):
                return comm.bcast(comm.rank, root=0)
            """,
        )
        text = format_protocol(ana.protocol_for("fn"))
        assert text.startswith("protocol: pkg.mod.fn (model size")
        assert "bcast(root=0)" in text

    def test_json_report_round_trips(self, tmp_path):
        ana = _analysis(
            tmp_path,
            mod="""
            def fn(comm):
                return comm.gather(comm.rank, root=0)
            """,
        )
        data = json.loads(format_protocol(ana.protocol_for("fn"), fmt="json"))
        assert data["function"] == "pkg.mod.fn"
        assert data["imprecise"] is None
        ops = {e["op"] for role in data["roles"] for e in role["events"]}
        assert ops == {"gather"}

    def test_analysis_is_memoized_on_project(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("def fn(comm):\n    comm.barrier()\n")
        project = build_project([pkg])
        assert analyze_protocols(project) is analyze_protocols(project)


class TestCLIReport:
    def test_protocol_report_text(self, capsys):
        rc = main(
            ["lint", str(REPO_SRC), "--protocol-report", "run_stage_on_comm"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("protocol: ")
        assert "gather(root=0)" in out

    def test_protocol_report_json(self, capsys):
        rc = main(
            [
                "lint",
                str(REPO_SRC),
                "--protocol-report",
                "run_stage_on_comm",
                "--format",
                "json",
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["function"].endswith("run_stage_on_comm")

    def test_protocol_report_unknown_function(self, capsys):
        rc = main(
            ["lint", str(REPO_SRC), "--protocol-report", "definitely_missing"]
        )
        assert rc == 2
        assert "no communicator-taking function" in capsys.readouterr().err

    def test_stats_include_protocol_pass(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("def fn(comm):\n    comm.barrier()\n")
        assert main(["lint", str(pkg), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "protocol pass:" in out
        assert "driver(s)" in out
