"""Content-hash cache: unchanged files are never re-parsed."""

import pytest

from repro.lint import DEFAULT_CACHE, SUMMARY_VERSION, LintCache, analyze_paths


def _tree(tmp_path, n=3):
    for i in range(n):
        (tmp_path / f"m{i}.py").write_text(f"def f{i}(x):\n    return x + {i}\n")
    return tmp_path


class TestFileEntry:
    def test_hit_on_unchanged_source(self):
        cache = LintCache()
        src = "x = 1\n"
        first = cache.file_entry("a.py", src)
        second = cache.file_entry("a.py", src)
        assert second is first
        assert (cache.parses, cache.hits) == (1, 1)

    def test_changed_source_reparses(self):
        cache = LintCache()
        cache.file_entry("a.py", "x = 1\n")
        entry = cache.file_entry("a.py", "x = 2\n")
        assert entry.ctx.source == "x = 2\n"
        assert (cache.parses, cache.hits) == (2, 0)

    def test_syntax_errors_are_not_cached(self):
        cache = LintCache()
        with pytest.raises(SyntaxError):
            cache.file_entry("a.py", "def broken(:\n")
        assert len(cache) == 0
        # the fixed file parses fresh, not from a poisoned entry
        entry = cache.file_entry("a.py", "def fixed():\n    pass\n")
        assert "fixed" in entry.summary.functions


class TestSummaryVersioning:
    """Cached entries must not survive a summary-shape change.

    ``FileSummary``/``FunctionInfo`` grow new fields over time (the
    protocol pass added ``comm_param`` and ``node``); a cache keyed on
    source bytes alone would keep serving summaries built by older
    code.  ``SUMMARY_VERSION`` is folded into the digest so bumping it
    invalidates every entry.
    """

    def test_version_token_is_part_of_the_digest(self, monkeypatch):
        src = "x = 1\n"
        before = LintCache.digest_of(src)
        monkeypatch.setattr(
            "repro.lint.cache.SUMMARY_VERSION", SUMMARY_VERSION + 1
        )
        assert LintCache.digest_of(src) != before

    def test_version_bump_forces_reparse(self, monkeypatch):
        cache = LintCache()
        src = "def f(x):\n    return x\n"
        cache.file_entry("a.py", src)
        cache.file_entry("a.py", src)
        assert (cache.parses, cache.hits) == (1, 1)

        monkeypatch.setattr(
            "repro.lint.cache.SUMMARY_VERSION", SUMMARY_VERSION + 1
        )
        cache.file_entry("a.py", src)
        assert cache.parses == 2  # stale summary was not reused


class TestIncrementalRuns:
    def test_second_run_parses_zero_files(self, tmp_path):
        tree = _tree(tmp_path)
        cache = LintCache()
        first = analyze_paths([tree], cache=cache)
        assert first.stats.parses == 3
        assert first.stats.cache_hits == 0

        second = analyze_paths([tree], cache=cache)
        assert second.stats.parses == 0
        assert second.stats.cache_hits == 3
        assert second.stats.cache_hit_rate == 1.0
        assert second.findings == first.findings

    def test_only_touched_file_reparses(self, tmp_path):
        tree = _tree(tmp_path)
        cache = LintCache()
        analyze_paths([tree], cache=cache)
        (tree / "m1.py").write_text("def f1(x):\n    return x * 2\n")
        rerun = analyze_paths([tree], cache=cache)
        assert rerun.stats.parses == 1
        assert rerun.stats.cache_hits == 2

    def test_default_cache_is_shared(self, tmp_path):
        tree = _tree(tmp_path, n=1)
        analyze_paths([tree])
        before = (DEFAULT_CACHE.parses, DEFAULT_CACHE.hits)
        result = analyze_paths([tree])
        assert result.stats.parses == 0
        assert (DEFAULT_CACHE.parses, DEFAULT_CACHE.hits) == (before[0], before[1] + 1)
