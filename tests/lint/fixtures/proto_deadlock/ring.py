"""True-positive corpus: every role receives before it sends.

Both functions deadlock under the simulated runtime; the static
protocol verifier must flag them with a witness that names each
role's blocking event.  The ``noqa`` markers keep the repository's
self-clean gate green — the corpus tests exercise the rules directly,
bypassing suppression.
"""


def pairwise_swap(comm):
    """Ranks 0 and 1 both post their recv first: classic head-to-head."""
    if comm.rank == 0:
        got = comm.recv(source=1)  # noqa: MPI005 - deliberate cyclic-wait fixture
        comm.send("from-zero", dest=1)
    elif comm.rank == 1:
        got = comm.recv(source=0)  # noqa: MPI005 - deliberate cyclic-wait fixture
        comm.send("from-one", dest=0)
    else:
        got = None
    return got


def ring_exchange(comm):
    """All ranks recv from the left before sending right: full-ring cycle."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    incoming = comm.recv(source=left)  # noqa: MPI005 - deliberate cyclic-wait fixture
    comm.send(incoming, dest=right)
    return incoming
