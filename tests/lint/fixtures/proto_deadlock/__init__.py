"""Deliberately-deadlocking protocol corpus for MPI005 (cyclic wait)."""
