"""True-positive corpus: sends nobody receives, recvs nobody feeds.

The ``noqa`` markers keep the tree-wide strict gate green; the corpus
tests call the rules directly so suppression does not apply there.
"""


def orphan_send(comm):
    """Rank 0 ships a message rank 1 never collects."""
    if comm.rank == 0:
        comm.send([1, 2, 3], dest=1, tag=3)  # noqa: MPI004 - deliberate orphan-send fixture
    return comm.rank


def starved_recv(comm):
    """Rank 1 waits for a message no rank ever sends."""
    if comm.rank == 1:
        return comm.recv(source=0, tag=9)  # noqa: MPI004 - deliberate starved-recv fixture
    return None
