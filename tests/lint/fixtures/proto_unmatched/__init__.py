"""Unmatched point-to-point corpus for MPI004."""
