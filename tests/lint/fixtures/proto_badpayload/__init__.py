"""Payload-contract corpus for MPI007."""
