"""True-positive corpus: receiver uses the payload as the wrong type.

Rank 0 sends a dict; rank 1 calls ``.append`` on it, which only a
list supports.  The ``noqa`` keeps the strict gate green; corpus
tests call the rule directly.
"""


def ship_flags(comm):
    if comm.rank == 0:
        comm.send({"trim": True}, dest=1)
        return None
    if comm.rank == 1:
        flags = comm.recv(source=0)  # noqa: MPI007 - deliberate contract-break fixture
        flags.append("done")
        return flags
    return None
