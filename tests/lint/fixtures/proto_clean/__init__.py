"""True-negative corpus: a well-formed protocol none of MPI004-007 flags."""
