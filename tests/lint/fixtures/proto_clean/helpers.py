"""Symmetric collective helper every rank calls together."""


def reduce_step(comm, value):
    total = comm.gather(value, root=0)
    if comm.rank == 0:
        merged = sum(total)
    else:
        merged = None
    return comm.bcast(merged, root=0)
