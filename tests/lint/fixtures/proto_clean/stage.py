"""True-negative corpus: matched ring exchange plus symmetric collectives.

The sendrecv pairs every rank's send with its neighbour's recv, the
payload is used consistently as a dict on both ends, and the
collective helper is entered by all ranks — nothing here should trip
MPI004, MPI005, MPI006 or MPI007.
"""

from proto_clean.helpers import reduce_step


def clean_driver(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    token = comm.sendrecv({"origin": comm.rank}, dest=right, source=left)
    token.update({"hops": 1})
    return reduce_step(comm, len(token))
