"""Collective-divergence corpus for MPI006 (cross-file witness chain)."""
