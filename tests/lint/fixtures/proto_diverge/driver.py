"""True-positive corpus: only some ranks reach a collective.

``skewed_driver`` calls a helper in *another module* that runs an
allgather, but only on rank 0 — the MPI006 witness chain must cross
the file boundary.  ``per_item_reduce`` iterates a rank-dependent
number of times around a reduce.  The ``noqa`` markers keep the
tree-wide strict gate green; corpus tests bypass suppression.
"""

from proto_diverge.collective import sync_lengths


def skewed_driver(comm, items):
    if comm.rank == 0:
        sizes = sync_lengths(comm, items)  # noqa: MPI006 - deliberate divergence fixture
    else:
        sizes = None
    return sizes


def per_item_reduce(comm, items):
    mine = items[comm.rank]
    totals = []
    for chunk in mine:
        totals.append(comm.reduce(len(chunk), root=0))  # noqa: MPI006 - deliberate divergence fixture
    return totals
