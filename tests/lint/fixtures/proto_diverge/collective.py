"""Helper module: the collective the skewed driver only partially reaches."""


def sync_lengths(comm, counts):
    """Every rank must call this together — it runs an allgather."""
    return comm.allgather(len(counts))
