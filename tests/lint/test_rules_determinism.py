"""True-positive / true-negative fixtures for DET001."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def findings(src):
    return lint_source(
        textwrap.dedent(src), path="fixture.py", rules=select_rules(["DET001"])
    )


class TestDET001UnseededRng:
    def test_np_random_module_call_flagged(self):
        fs = findings(
            """
            import numpy as np
            x = np.random.rand(10)
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "DET001"
        assert fs[0].severity is Severity.WARNING
        assert "np.random.rand" in fs[0].message

    def test_numpy_random_seed_flagged(self):
        fs = findings(
            """
            import numpy
            numpy.random.seed(0)
            vals = numpy.random.normal(size=3)
            """
        )
        assert len(fs) == 2

    def test_stdlib_random_call_flagged(self):
        fs = findings(
            """
            import random
            def jitter():
                return random.random() + random.randint(0, 5)
            """
        )
        assert len(fs) == 2

    def test_seeded_generators_clean(self):
        fs = findings(
            """
            import random
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.random(10)
            r = random.Random(7)
            y = r.randint(0, 5)
            g = np.random.Generator(np.random.PCG64(1))
            """
        )
        assert fs == []

    def test_unrelated_random_object_clean(self):
        # A local variable called `random` (no `import random`) is not
        # the stdlib module; only real module-level draws are flagged.
        fs = findings(
            """
            def fn(random):
                return random.choice([1, 2])
            """
        )
        assert fs == []

    def test_global_shuffle_choice_sample_flagged(self):
        fs = findings(
            """
            import random
            def scramble(xs):
                random.shuffle(xs)
                pick = random.choice(xs)
                few = random.sample(xs, 2)
                return pick, few
            """
        )
        assert len(fs) == 3
        assert all(f.rule == "DET001" for f in fs)

    def test_from_imported_draws_flagged(self):
        # `from random import shuffle` hides the module prefix but is
        # the same hidden-global generator
        fs = findings(
            """
            from random import choice, sample, shuffle
            def scramble(xs):
                shuffle(xs)
                return choice(xs), sample(xs, 2)
            """
        )
        assert len(fs) == 3
        assert "random.shuffle" in " ".join(f.message for f in fs)

    def test_from_imported_numpy_draws_flagged(self):
        fs = findings(
            """
            from numpy.random import rand
            x = rand(10)
            """
        )
        assert len(fs) == 1
        assert "numpy.random.rand" in fs[0].message

    def test_seeded_instance_shuffle_clean(self):
        fs = findings(
            """
            import random
            import numpy as np
            r = random.Random(7)
            rng = np.random.default_rng(3)
            def scramble(xs):
                r.shuffle(xs)
                rng.shuffle(xs)
                return r.sample(xs, 2)
            """
        )
        assert fs == []

    def test_from_imported_seeded_factories_clean(self):
        fs = findings(
            """
            from numpy.random import default_rng
            from random import Random
            rng = default_rng(0)
            r = Random(1)
            """
        )
        assert fs == []
