"""True-positive / true-negative fixtures for DET001."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def findings(src):
    return lint_source(
        textwrap.dedent(src), path="fixture.py", rules=select_rules(["DET001"])
    )


class TestDET001UnseededRng:
    def test_np_random_module_call_flagged(self):
        fs = findings(
            """
            import numpy as np
            x = np.random.rand(10)
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "DET001"
        assert fs[0].severity is Severity.WARNING
        assert "np.random.rand" in fs[0].message

    def test_numpy_random_seed_flagged(self):
        fs = findings(
            """
            import numpy
            numpy.random.seed(0)
            vals = numpy.random.normal(size=3)
            """
        )
        assert len(fs) == 2

    def test_stdlib_random_call_flagged(self):
        fs = findings(
            """
            import random
            def jitter():
                return random.random() + random.randint(0, 5)
            """
        )
        assert len(fs) == 2

    def test_seeded_generators_clean(self):
        fs = findings(
            """
            import random
            import numpy as np
            rng = np.random.default_rng(42)
            x = rng.random(10)
            r = random.Random(7)
            y = r.randint(0, 5)
            g = np.random.Generator(np.random.PCG64(1))
            """
        )
        assert fs == []

    def test_unrelated_random_object_clean(self):
        # A local variable called `random` (no `import random`) is not
        # the stdlib module; only real module-level draws are flagged.
        fs = findings(
            """
            def fn(random):
                return random.choice([1, 2])
            """
        )
        assert fs == []
