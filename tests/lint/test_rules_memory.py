"""True-positive / true-negative fixtures for MEM001."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def findings(src, path="src/repro/distributed/fixture.py"):
    return lint_source(
        textwrap.dedent(src), path=path, rules=select_rules(["MEM001"])
    )


class TestMEM001TruePositives:
    def test_to_array_in_kernel_flagged(self):
        fs = findings(
            """
            def dead_end_kernel(dag, part, reads):
                data = reads.to_array()
                return data.sum()
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "MEM001"
        assert fs[0].severity is Severity.WARNING
        assert "to_array" in fs[0].message

    def test_to_packed_and_to_graph_flagged(self):
        fs = findings(
            """
            def merge_kernel(overlaps, graph_store):
                full = overlaps.to_packed()
                g = graph_store.to_graph()
                return full, g
            """
        )
        assert {f.message.split("`")[1] for f in fs} == {
            ".to_packed()",
            ".to_graph()",
        }

    def test_concatenated_shard_stream_flagged(self):
        fs = findings(
            """
            import numpy as np

            def traversal_kernel(store):
                eu = np.concatenate(
                    [s["eu"] for s in store.iter_edge_shards()]
                )
                return eu
            """
        )
        assert len(fs) == 1
        assert "shard stream" in fs[0].message

    def test_vstack_of_iter_shards_flagged(self):
        fs = findings(
            """
            import numpy as np

            def layout_kernel(store):
                return np.vstack([a for _, a in store.iter_shards()])
            """
        )
        assert len(fs) == 1

    def test_bare_concatenate_name_flagged(self):
        fs = findings(
            """
            from numpy import hstack

            def glue_kernel(ovl):
                return hstack(list(ovl.iter_batches()))
            """
        )
        assert len(fs) == 1


class TestMEM001TrueNegatives:
    def test_non_kernel_function_clean(self):
        fs = findings(
            """
            def report_store(reads):
                return reads.to_array().sum()
            """
        )
        assert fs == []

    def test_shard_wise_kernel_clean(self):
        fs = findings(
            """
            def dead_end_kernel(dag, part, store):
                total = 0
                for index, arrays in store.iter_shards():
                    total += arrays["data"].sum()
                return total
            """
        )
        assert fs == []

    def test_concatenate_of_local_arrays_clean(self):
        fs = findings(
            """
            import numpy as np

            def subpath_kernel(dag, part):
                heads = np.concatenate([dag.heads(part), dag.tails(part)])
                return np.unique(heads)
            """
        )
        assert fs == []

    def test_noqa_suppresses(self):
        fs = findings(
            """
            def debug_kernel(reads):
                return reads.to_array()  # noqa: MEM001
            """
        )
        assert fs == []


class TestMEM001OnRealKernels:
    def test_shipped_kernels_are_clean(self):
        # The lint self-clean gate enforces this too; pin it here so a
        # regression names the rule instead of failing a broad sweep.
        import glob

        from repro.lint import lint_paths

        files = glob.glob("src/repro/distributed/*.py")
        assert files
        fs = [
            f
            for f in lint_paths(files, rules=select_rules(["MEM001"]))
            if f.rule == "MEM001"
        ]
        assert fs == []
