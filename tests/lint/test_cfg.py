"""CFG builder unit tests: the lowering the protocol interpreter walks."""

import ast
import textwrap

from repro.lint import build_cfg


def _cfg(src):
    tree = ast.parse(textwrap.dedent(src))
    (func,) = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    return build_cfg(func)


def _reachable(cfg):
    seen, todo = set(), [cfg.entry]
    while todo:
        idx = todo.pop()
        if idx in seen:
            continue
        seen.add(idx)
        b = cfg.block(idx)
        if b.branch is not None:
            todo += [b.branch.true, b.branch.false]
        if b.loop is not None:
            todo += [b.loop.body, b.loop.exit]
        if b.succ is not None:
            todo.append(b.succ)
    return seen


class TestStraightLine:
    def test_single_block_to_exit(self):
        cfg = _cfg(
            """
            def fn(x):
                y = x + 1
                return y
            """
        )
        entry = cfg.block(cfg.entry)
        assert [type(u).__name__ for u in entry.units] == ["Assign", "Return"]
        assert entry.terminal
        assert entry.succ == cfg.exit
        assert cfg.block(cfg.exit).units == []

    def test_name_comes_from_function(self):
        assert _cfg("def fn(x):\n    return x\n").name == "fn"


class TestBranches:
    def test_if_produces_two_armed_branch_and_join(self):
        cfg = _cfg(
            """
            def fn(x):
                if x > 0:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        entry = cfg.block(cfg.entry)
        assert entry.branch is not None
        true_b = cfg.block(entry.branch.true)
        false_b = cfg.block(entry.branch.false)
        assert true_b.succ == false_b.succ  # both arms meet at the join
        join = cfg.block(true_b.succ)
        assert join.terminal and join.succ == cfg.exit

    def test_if_without_else_falls_to_join(self):
        cfg = _cfg(
            """
            def fn(x):
                if x:
                    x += 1
                return x
            """
        )
        entry = cfg.block(cfg.entry)
        join = cfg.block(entry.branch.false)  # false edge goes straight on
        assert cfg.block(entry.branch.true).succ == join.idx

    def test_return_in_arm_terminates_that_path(self):
        cfg = _cfg(
            """
            def fn(x):
                if x:
                    return 1
                return 2
            """
        )
        entry = cfg.block(cfg.entry)
        true_b = cfg.block(entry.branch.true)
        assert true_b.terminal and true_b.succ == cfg.exit
        false_b = cfg.block(entry.branch.false)
        assert false_b.terminal

    def test_dead_tail_after_return_is_dropped(self):
        cfg = _cfg(
            """
            def fn(x):
                return x
                x = "unreachable"
            """
        )
        units = [u for i in _reachable(cfg) for u in cfg.block(i).units]
        assert all(not isinstance(u, ast.Assign) for u in units)


class TestLoops:
    def test_for_header_and_back_edge(self):
        cfg = _cfg(
            """
            def fn(xs):
                total = 0
                for x in xs:
                    total += x
                return total
            """
        )
        headers = [b for b in cfg.blocks if b.loop is not None]
        assert len(headers) == 1
        (header,) = headers
        assert header.loop.kind == "for"
        body = cfg.block(header.loop.body)
        assert body.succ == header.idx  # back edge
        after = cfg.block(header.loop.exit)
        assert after.terminal

    def test_while_keeps_test_expression(self):
        cfg = _cfg(
            """
            def fn(n):
                while n > 0:
                    n -= 1
                return n
            """
        )
        (header,) = [b for b in cfg.blocks if b.loop is not None]
        assert header.loop.kind == "while"
        assert isinstance(header.loop.test, ast.Compare)

    def test_break_targets_loop_exit(self):
        cfg = _cfg(
            """
            def fn(xs):
                for x in xs:
                    if x:
                        break
                return xs
            """
        )
        (header,) = [b for b in cfg.blocks if b.loop is not None]
        body = cfg.block(header.loop.body)
        # the true arm of the inner if jumps straight to the loop exit
        assert cfg.block(body.branch.true).succ == header.loop.exit

    def test_continue_targets_loop_header(self):
        cfg = _cfg(
            """
            def fn(xs):
                for x in xs:
                    if x:
                        continue
                    xs.pop()
            """
        )
        (header,) = [b for b in cfg.blocks if b.loop is not None]
        body = cfg.block(header.loop.body)
        assert cfg.block(body.branch.true).succ == header.idx

    def test_loop_else_spliced_on_exit_path(self):
        cfg = _cfg(
            """
            def fn(xs):
                for x in xs:
                    x += 1
                else:
                    xs = []
                return xs
            """
        )
        (header,) = [b for b in cfg.blocks if b.loop is not None]
        else_block = cfg.block(header.loop.exit)
        assert any(isinstance(u, ast.Assign) for u in else_block.units)
        assert cfg.block(else_block.succ).terminal


class TestWithAndTry:
    def test_with_body_stays_on_fallthrough(self):
        cfg = _cfg(
            """
            def fn(comm):
                with comm.timed():
                    comm.barrier()
                return 1
            """
        )
        entry = cfg.block(cfg.entry)
        kinds = [type(u).__name__ for u in entry.units]
        # context expr, body statement and the trailing return all
        # share the straight-line path
        assert kinds == ["Call", "Expr", "Return"]

    def test_try_handlers_are_alt_succs_only(self):
        cfg = _cfg(
            """
            def fn(x):
                try:
                    x += 1
                except ValueError:
                    x = 0
                return x
            """
        )
        entry = cfg.block(cfg.entry)
        assert len(entry.alt_succs) == 1
        handler = cfg.block(entry.alt_succs[0])
        assert handler.terminal
        # the handler is not on any fall-through/branch/loop edge
        assert handler.idx not in _reachable(cfg)

    def test_finally_joins_main_path(self):
        cfg = _cfg(
            """
            def fn(x):
                try:
                    x += 1
                finally:
                    x += 2
                return x
            """
        )
        entry = cfg.block(cfg.entry)
        assert len(entry.units) == 3  # body, finally, return share the path
        assert entry.terminal
