"""MPI004-MPI007: the whole-program communication-protocol rules.

The true-positive and true-negative fixtures live *on disk* under
``tests/lint/fixtures/`` so the same packages double as the corpus the
tree-wide self-clean gate walks.  Deliberate findings there carry
targeted ``# noqa`` markers; these tests call ``check_project``
directly (suppression applies in the driver, not in the rules), and
separately verify the driver honours those per-line waivers even when
the witness chain spans files.
"""

import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.lint import build_project, lint_paths, select_rules
from repro.lint.registry import all_rules

FIXTURES = Path(__file__).parent / "fixtures"
PROTOCOL_RULES = select_rules(["MPI004", "MPI005", "MPI006", "MPI007"])


def _check(package: str, rule_id: str):
    """Run one project rule directly over an on-disk corpus package."""
    project = build_project([FIXTURES / package])
    (rule,) = [r for r in all_rules() if r.id == rule_id]
    return sorted(rule.check_project(project))


def _pkg(tmp_path, name="pkg", **modules):
    pkg = tmp_path / name
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for mod, src in modules.items():
        (pkg / f"{mod}.py").write_text(textwrap.dedent(src))
    return pkg


class TestMPI004Unmatched:
    def test_orphan_send_flagged_at_send_site(self):
        fs = _check("proto_unmatched", "MPI004")
        orphan = [f for f in fs if "never received" in f.message]
        assert len(orphan) == 1
        assert orphan[0].path.endswith("pipeline.py")
        assert "`send(dest=1, tag=3)` by rank 0" in orphan[0].message
        assert "orphan_send" in orphan[0].message

    def test_starved_recv_flagged_at_recv_site(self):
        fs = _check("proto_unmatched", "MPI004")
        starved = [f for f in fs if "blocks rank 1" in f.message]
        assert len(starved) == 1
        assert "`recv(source=0, tag=9)`" in starved[0].message
        assert "no send with a matching (dest, tag)" in starved[0].message

    def test_clean_corpus_is_negative(self):
        assert _check("proto_clean", "MPI004") == []

    def test_end_to_end_through_driver(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            mod="""
            def lonely(comm):
                if comm.rank == 0:
                    comm.send("x", dest=1, tag=7)
            """,
        )
        fs = lint_paths([pkg], rules=PROTOCOL_RULES)
        assert [f.rule for f in fs] == ["MPI004"]


class TestMPI005CyclicWait:
    def test_witness_names_both_roles_blocking_events(self):
        fs = _check("proto_deadlock", "MPI005")
        (pairwise,) = [f for f in fs if "pairwise_swap" in f.message]
        # the acceptance bar: the witness names *each* role's blocking
        # event, with its site, not just "a deadlock was detected".
        assert "rank 0 blocks at `recv(source=1, tag=0)`" in pairwise.message
        assert "rank 1 blocks at `recv(source=0, tag=0)`" in pairwise.message
        assert pairwise.message.count("ring.py:") >= 2

    def test_full_ring_cycle_lists_every_rank(self):
        fs = _check("proto_deadlock", "MPI005")
        (ring,) = [f for f in fs if "ring_exchange" in f.message]
        for rank in range(4):
            assert f"rank {rank} blocks at" in ring.message

    def test_fix_suggestion_present(self):
        fs = _check("proto_deadlock", "MPI005")
        assert all("sendrecv" in f.message for f in fs)

    def test_clean_corpus_is_negative(self):
        assert _check("proto_clean", "MPI005") == []

    def test_sendrecv_ring_is_negative(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            mod="""
            def ring(comm):
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                return comm.sendrecv(comm.rank, dest=right, source=left)
            """,
        )
        assert lint_paths([pkg], rules=PROTOCOL_RULES) == []


class TestMPI006CollectiveDivergence:
    def test_cross_file_witness_chain(self):
        fs = _check("proto_diverge", "MPI006")
        (skewed,) = [f for f in fs if "sync_lengths" in f.message]
        assert skewed.path.endswith("driver.py")
        # witness reaches into the other module and names the chain
        assert "collective.py" in skewed.message
        assert "via sync_lengths" in skewed.message
        assert "allgather" in skewed.message

    def test_rank_dependent_loop_trip_count(self):
        fs = _check("proto_diverge", "MPI006")
        (loop,) = [f for f in fs if "inside the loop" in f.message]
        assert "rank-local data" in loop.message
        assert "comm.reduce" in loop.message

    def test_clean_corpus_is_negative(self):
        # all-ranks helper collectives must not be mistaken for skew
        assert _check("proto_clean", "MPI006") == []

    def test_guarded_direct_collective_stays_mpi001(self, tmp_path):
        # a collective guarded in the *same* function is MPI001's
        # finding; MPI006 must not duplicate it.
        pkg = _pkg(
            tmp_path,
            mod="""
            def fn(comm):
                if comm.rank == 0:
                    comm.bcast(1, root=0)
            """,
        )
        fs = lint_paths([pkg], rules=select_rules(["MPI001", "MPI006"]))
        assert [f.rule for f in fs] == ["MPI001"]


class TestMPI007PayloadContract:
    def test_dict_sent_list_methods_used(self):
        fs = _check("proto_badpayload", "MPI007")
        assert len(fs) == 1
        assert "`.append()`" in fs[0].message
        assert "ships a dict" in fs[0].message
        # the witness cites the matching send's site
        assert re.search(r"sender\.py:\d+", fs[0].message)

    def test_clean_corpus_is_negative(self):
        # proto_clean receives a dict and calls .update on it
        assert _check("proto_clean", "MPI007") == []

    def test_unknown_use_is_not_flagged(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            mod="""
            def fn(comm):
                if comm.rank == 0:
                    comm.send({"a": 1}, dest=1)
                elif comm.rank == 1:
                    obj = comm.recv(source=0)
                    obj.frobnicate()
            """,
        )
        assert lint_paths([pkg], rules=select_rules(["MPI007"])) == []


class TestNoqaOnProjectFindings:
    """Per-line noqa must silence whole-program findings too."""

    def test_corpus_is_suppressed_through_the_driver(self):
        # every deliberate finding in the corpus carries a targeted
        # noqa — including MPI006, whose witness chain crosses files.
        assert lint_paths([FIXTURES], rules=PROTOCOL_RULES) == []

    def test_stripping_noqa_resurfaces_cross_file_finding(self, tmp_path):
        src = FIXTURES / "proto_diverge"
        dst = tmp_path / "proto_diverge"
        shutil.copytree(src, dst)
        for mod in dst.glob("*.py"):
            mod.write_text(re.sub(r"\s*# noqa[^\n]*", "", mod.read_text()))
        fs = lint_paths([dst], rules=PROTOCOL_RULES)
        assert {f.rule for f in fs} == {"MPI006"}
        assert any("via sync_lengths" in f.message for f in fs)

    def test_noqa_for_other_rule_does_not_silence(self, tmp_path):
        pkg = _pkg(
            tmp_path,
            mod="""
            def fn(comm):
                if comm.rank == 0:
                    comm.send("x", dest=1)  # noqa: MPI001 - wrong rule
            """,
        )
        fs = lint_paths([pkg], rules=PROTOCOL_RULES)
        assert [f.rule for f in fs] == ["MPI004"]
