"""The shipped tree must stay lint-clean.

Runs the full rule set — including the whole-program PURE/ARCH002
pass — over ``src/repro``, ``examples``, ``benchmarks``, ``tests``,
and ``src/repro/bench`` and asserts zero findings of *any* severity
(so ``python -m repro lint ... --strict`` exits 0).  Every future PR
that introduces a rank-dependent collective, a reserved tag, a
mutate-after-send race, an unseeded RNG, an untimed compute loop, an
mpi import in a kernel module (ARCH001), a state-mutating kernel
(PURE001/PURE002), or a malformed stage registration (ARCH002) fails
tier-1 here — the lint net the scaling roadmap relies on.  Fixtures
that are deliberately dirty (a mismatched-collective deadlock test, a
duplicate-registration probe) carry targeted ``# noqa`` comments.

The second strict run doubles as the incremental-cache gate: it must
re-parse zero files.
"""

from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import DEFAULT_CACHE, Severity, all_rules, analyze_paths, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

LINTED_TREES = ("src/repro", "examples", "benchmarks", "tests")


def _lintable(*names):
    return [REPO_ROOT / n for n in names if (REPO_ROOT / n).exists()]


def test_src_repro_has_zero_error_findings():
    errors = [
        f
        for f in lint_paths(_lintable("src/repro"))
        if f.severity >= Severity.ERROR
    ]
    assert errors == [], "\n" + "\n".join(f.format_text() for f in errors)


def test_whole_tree_is_strict_clean():
    # `tests` covers the lint fixtures themselves; `src/repro` covers
    # `src/repro/bench` (kept explicit in LINTED_TREES' docstring
    # contract via the package walk).
    findings = lint_paths(_lintable(*LINTED_TREES))
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_bench_package_is_linted_and_clean():
    findings = lint_paths(_lintable("src/repro/bench"))
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_second_strict_run_reuses_cache():
    paths = _lintable(*LINTED_TREES)
    first = analyze_paths(paths)  # warms DEFAULT_CACHE (or reuses it)
    second = analyze_paths(paths)
    assert second.stats.files == first.stats.files > 0
    assert second.stats.parses == 0, "unchanged tree must not re-parse"
    assert second.stats.cache_hits == second.stats.files
    assert second.stats.cache_hit_rate == 1.0
    assert DEFAULT_CACHE.parses >= first.stats.parses


def test_cli_strict_lint_over_src_exits_zero(capsys):
    # The exact gate CI runs: `repro lint --strict src/repro`, with the
    # full rule set (ARCH001/PURE001/PURE002/ARCH002 included)
    # registered.
    assert {"ARCH001", "ARCH002", "PURE001", "PURE002"} <= {r.id for r in all_rules()}
    assert cli_main(["lint", "--strict", str(REPO_ROOT / "src" / "repro")]) == 0
    capsys.readouterr()  # swallow the (empty) report
