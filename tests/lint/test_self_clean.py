"""The shipped tree must stay lint-clean.

Runs the full rule set over ``src/repro``, ``examples``, and
``benchmarks`` and asserts zero findings of *any* severity (so
``python -m repro lint ... --strict`` exits 0).  Every future PR that
introduces a rank-dependent collective, a reserved tag, a
mutate-after-send race, an unseeded RNG, an untimed compute loop, or
an mpi import in a kernel module (ARCH001) fails tier-1 here — the
lint net the scaling roadmap relies on.
"""

from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import Severity, all_rules, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lintable(*names):
    return [REPO_ROOT / n for n in names if (REPO_ROOT / n).exists()]


def test_src_repro_has_zero_error_findings():
    errors = [
        f
        for f in lint_paths(_lintable("src/repro"))
        if f.severity >= Severity.ERROR
    ]
    assert errors == [], "\n" + "\n".join(f.format_text() for f in errors)


def test_whole_tree_is_strict_clean():
    findings = lint_paths(_lintable("src/repro", "examples", "benchmarks"))
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_cli_strict_lint_over_src_exits_zero(capsys):
    # The exact gate CI runs: `repro lint --strict src/repro`, with the
    # full rule set (ARCH001 included) registered.
    assert "ARCH001" in {r.id for r in all_rules()}
    assert cli_main(["lint", "--strict", str(REPO_ROOT / "src" / "repro")]) == 0
    capsys.readouterr()  # swallow the (empty) report
