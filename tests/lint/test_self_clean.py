"""The shipped tree must stay lint-clean.

Runs the full rule set over ``src/repro``, ``examples``, and
``benchmarks`` and asserts zero findings of *any* severity (so
``python -m repro lint ... --strict`` exits 0).  Every future PR that
introduces a rank-dependent collective, a reserved tag, a
mutate-after-send race, an unseeded RNG, or an untimed compute loop
fails tier-1 here — the lint net the scaling roadmap relies on.
"""

from pathlib import Path

from repro.lint import Severity, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _lintable(*names):
    return [REPO_ROOT / n for n in names if (REPO_ROOT / n).exists()]


def test_src_repro_has_zero_error_findings():
    errors = [
        f
        for f in lint_paths(_lintable("src/repro"))
        if f.severity >= Severity.ERROR
    ]
    assert errors == [], "\n" + "\n".join(f.format_text() for f in errors)


def test_whole_tree_is_strict_clean():
    findings = lint_paths(_lintable("src/repro", "examples", "benchmarks"))
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)
