"""True-positive / true-negative fixtures for PERF001 and PERF002."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def findings(src):
    return lint_source(
        textwrap.dedent(src), path="fixture.py", rules=select_rules(["PERF001"])
    )


def perf2_findings(src, path="src/repro/align/fixture.py"):
    return lint_source(
        textwrap.dedent(src), path=path, rules=select_rules(["PERF002"])
    )


class TestPERF001UntimedCompute:
    def test_bare_compute_loop_flagged(self):
        fs = findings(
            """
            def rank_fn(comm, items):
                total = 0
                for x in items:
                    total += x * x
                return comm.allreduce(total)
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "PERF001"
        assert fs[0].severity is Severity.WARNING
        assert "timed" in fs[0].message

    def test_nested_untimed_loop_flagged_once(self):
        fs = findings(
            """
            def rank_fn(comm, grid):
                acc = 0
                for row in grid:
                    for cell in row:
                        acc += cell
                return comm.allreduce(acc)
            """
        )
        assert len(fs) == 1  # only the outermost loop is reported

    def test_loop_under_timed_clean(self):
        fs = findings(
            """
            def rank_fn(comm, items):
                total = 0
                with comm.timed():
                    for x in items:
                        total += x * x
                return comm.allreduce(total)
            """
        )
        assert fs == []

    def test_communication_loop_clean(self):
        # A loop that drives sends/receives is communication, already
        # charged by the cost model, not untimed compute.
        fs = findings(
            """
            def rank_fn(comm, objs):
                for dst in range(comm.size):
                    if dst != comm.rank:
                        comm.send(objs[dst], dst)
            """
        )
        assert fs == []

    def test_loop_containing_timed_block_clean(self):
        # The repo's task-loop idiom: iterate tasks, time each one.
        fs = findings(
            """
            def rank_fn(comm, tasks):
                out = []
                for t in tasks:
                    with comm.timed():
                        out.append(t * 2)
                return out
            """
        )
        assert fs == []

    def test_function_without_comm_clean(self):
        fs = findings(
            """
            def pure_helper(items):
                total = 0
                for x in items:
                    total += x
                return total
            """
        )
        assert fs == []


SCALARIZED = """
def overlap_subset_pair(self, reads, q_idx, r_idx):
    out = []
    for q in q_idx.tolist():
        out.append(q)
    return out
"""


class TestPERF002ScalarizedHotLoop:
    def test_tolist_loop_in_hot_function_flagged(self):
        fs = perf2_findings(SCALARIZED)
        assert len(fs) == 1
        assert fs[0].rule == "PERF002"
        assert fs[0].severity is Severity.WARNING
        assert "tolist" in fs[0].message

    def test_wrapped_iter_expression_flagged(self):
        fs = perf2_findings(
            """
            import numpy as np
            def _candidates(self, arr):
                for q in np.asarray(arr).tolist():
                    yield q
            """
        )
        assert len(fs) == 1

    def test_candidates_suffix_flagged(self):
        fs = perf2_findings(
            """
            def _pair_candidates(self, arr):
                for q in arr.tolist():
                    yield q
            """
        )
        assert len(fs) == 1

    def test_outside_align_package_clean(self):
        fs = perf2_findings(SCALARIZED, path="src/repro/graph/fixture.py")
        assert fs == []

    def test_windows_path_separators_normalized(self):
        fs = perf2_findings(SCALARIZED, path="src\\repro\\align\\fixture.py")
        assert len(fs) == 1

    def test_non_hot_function_clean(self):
        fs = perf2_findings(
            """
            def merge_results(self, parts):
                for p in parts.tolist():
                    yield p
            """
        )
        assert fs == []

    def test_loop_without_tolist_clean(self):
        fs = perf2_findings(
            """
            def overlap_subset_pair(self, pairs):
                for i, j in pairs:
                    yield i + j
            """
        )
        assert fs == []

    def test_noqa_suppresses(self):
        fs = perf2_findings(
            """
            def overlap_subset_pair_loop(self, q_idx):
                for q in q_idx.tolist():  # noqa: PERF002 - legacy engine
                    yield q
            """
        )
        assert fs == []


SPARSE_SCALARIZED = """
def find_transitive_edges_sparse(dag, nodes):
    out = []
    for v in nodes.tolist():
        out.append(v)
    return out
"""


class TestPERF002SparseEngineScope:
    """The finish-engine hot paths are policed like the align engine."""

    def test_sparse_function_in_distributed_flagged(self):
        fs = perf2_findings(
            SPARSE_SCALARIZED, path="src/repro/distributed/transitive.py"
        )
        assert len(fs) == 1
        assert fs[0].rule == "PERF002"

    def test_loop_reference_kernel_in_distributed_clean(self):
        # The scalar reference kernels are the readable spec — exempt.
        fs = perf2_findings(
            """
            def find_transitive_edges(dag, nodes):
                out = []
                for v in nodes.tolist():
                    out.append(v)
                return out
            """,
            path="src/repro/distributed/transitive.py",
        )
        assert fs == []

    def test_any_function_in_sparse_module_flagged(self):
        fs = perf2_findings(
            """
            def ragged_positions(starts, counts):
                for s in starts.tolist():
                    yield s
            """,
            path="src/repro/graph/sparse.py",
        )
        assert len(fs) == 1

    def test_sparse_noqa_still_suppresses(self):
        fs = perf2_findings(
            """
            def boolean_product_keys_sparse(rows):
                for r in rows.tolist():  # noqa: PERF002 - numpy fallback
                    yield r
            """,
            path="src/repro/graph/sparse.py",
        )
        assert fs == []
