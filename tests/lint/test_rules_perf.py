"""True-positive / true-negative fixtures for PERF001."""

import textwrap

from repro.lint import Severity, lint_source, select_rules


def findings(src):
    return lint_source(
        textwrap.dedent(src), path="fixture.py", rules=select_rules(["PERF001"])
    )


class TestPERF001UntimedCompute:
    def test_bare_compute_loop_flagged(self):
        fs = findings(
            """
            def rank_fn(comm, items):
                total = 0
                for x in items:
                    total += x * x
                return comm.allreduce(total)
            """
        )
        assert len(fs) == 1
        assert fs[0].rule == "PERF001"
        assert fs[0].severity is Severity.WARNING
        assert "timed" in fs[0].message

    def test_nested_untimed_loop_flagged_once(self):
        fs = findings(
            """
            def rank_fn(comm, grid):
                acc = 0
                for row in grid:
                    for cell in row:
                        acc += cell
                return comm.allreduce(acc)
            """
        )
        assert len(fs) == 1  # only the outermost loop is reported

    def test_loop_under_timed_clean(self):
        fs = findings(
            """
            def rank_fn(comm, items):
                total = 0
                with comm.timed():
                    for x in items:
                        total += x * x
                return comm.allreduce(total)
            """
        )
        assert fs == []

    def test_communication_loop_clean(self):
        # A loop that drives sends/receives is communication, already
        # charged by the cost model, not untimed compute.
        fs = findings(
            """
            def rank_fn(comm, objs):
                for dst in range(comm.size):
                    if dst != comm.rank:
                        comm.send(objs[dst], dst)
            """
        )
        assert fs == []

    def test_loop_containing_timed_block_clean(self):
        # The repo's task-loop idiom: iterate tasks, time each one.
        fs = findings(
            """
            def rank_fn(comm, tasks):
                out = []
                for t in tasks:
                    with comm.timed():
                        out.append(t * 2)
                return out
            """
        )
        assert fs == []

    def test_function_without_comm_clean(self):
        fs = findings(
            """
            def pure_helper(items):
                total = 0
                for x in items:
                    total += x
                return total
            """
        )
        assert fs == []
