"""Driver-level tests: suppression, formats, file walking, exit codes."""

import io
import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import (
    LintCache,
    Severity,
    UsageError,
    all_rules,
    analyze_paths,
    format_findings,
    iter_python_files,
    lint_paths,
    lint_source,
    run,
)
from repro.lint.driver import load_baseline

BAD_SOURCE = textwrap.dedent(
    """
    import numpy as np

    def fn(comm):
        if comm.rank == 0:
            comm.bcast(np.random.rand(4), root=0)
    """
)


class TestRegistry:
    def test_all_rules_registered(self):
        ids = [r.id for r in all_rules()]
        assert ids == [
            "ARCH001",
            "ARCH002",
            "DET001",
            "MEM001",
            "MPI001",
            "MPI002",
            "MPI003",
            "MPI004",
            "MPI005",
            "MPI006",
            "MPI007",
            "PERF001",
            "PERF002",
            "PURE001",
            "PURE002",
            "ROB001",
            "ROB002",
        ]

    def test_every_rule_has_summary_and_severity(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.severity in (Severity.WARNING, Severity.ERROR)


class TestSuppression:
    def test_noqa_with_rule_id(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa: MPI002\n"
        assert lint_source(src) == []

    def test_bare_noqa_silences_all(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa\n"
        assert lint_source(src) == []

    def test_noqa_for_other_rule_does_not_silence(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa: DET001\n"
        assert [f.rule for f in lint_source(src)] == ["MPI002"]

    def test_noqa_rule_id_is_case_insensitive(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa: mpi002\n"
        assert lint_source(src) == []

    def test_noqa_with_multiple_rule_ids(self):
        src = (
            "import random\n"
            "def fn(comm):\n"
            "    comm.send(random.random(), 1, tag=-1000)  # noqa: MPI002,DET001\n"
        )
        assert lint_source(src) == []

    def test_noqa_multi_rule_list_still_selective(self):
        # listing other rules does not grant a blanket waiver
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa: DET001, PURE001\n"
        assert [f.rule for f in lint_source(src)] == ["MPI002"]


class TestFormats:
    def test_text_format_is_pyflakes_style(self):
        fs = lint_source(BAD_SOURCE, path="pkg/mod.py")
        assert fs, "fixture should produce findings"
        line = format_findings(fs).splitlines()[0]
        path_part, line_no, col, rest = line.split(":", 3)
        assert path_part == "pkg/mod.py"
        assert line_no.isdigit() and col.isdigit()

    def test_json_format_round_trips(self):
        fs = lint_source(BAD_SOURCE, path="pkg/mod.py")
        data = json.loads(format_findings(fs, fmt="json"))
        assert {d["rule"] for d in data} == {f.rule for f in fs}
        assert all({"path", "line", "col", "severity", "message"} <= d.keys() for d in data)

    def test_findings_sorted_by_location(self):
        fs = lint_source(BAD_SOURCE)
        assert fs == sorted(fs)

    def test_syntax_error_becomes_finding(self):
        fs = lint_source("def broken(:\n", path="bad.py")
        assert len(fs) == 1
        assert fs[0].rule == "E999"
        assert fs[0].severity is Severity.ERROR


class TestPathsAndExitCodes:
    def _tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(BAD_SOURCE)
        (tmp_path / "pkg" / "good.py").write_text("def fn(comm):\n    comm.barrier()\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import random\n")
        return tmp_path / "pkg"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        pkg = self._tree(tmp_path)
        names = [p.name for p in iter_python_files([pkg])]
        assert names == ["bad.py", "good.py"]

    def test_lint_paths_finds_only_bad_file(self, tmp_path):
        pkg = self._tree(tmp_path)
        fs = lint_paths([pkg])
        assert {f.rule for f in fs} == {"MPI001", "DET001"}
        assert all(f.path.endswith("bad.py") for f in fs)

    def test_run_exit_codes(self, tmp_path):
        pkg = self._tree(tmp_path)
        sink = io.StringIO()
        assert run([str(pkg / "good.py")], stream=sink) == 0
        assert run([str(pkg)], stream=sink) == 1  # MPI001 is an error
        assert run([str(pkg)], strict=True, stream=sink) == 1

    def test_run_warning_only_tree(self, tmp_path):
        mod = tmp_path / "warn.py"
        mod.write_text("import random\nx = random.random()\n")
        sink = io.StringIO()
        assert run([str(mod)], stream=sink) == 0  # warnings pass by default
        assert run([str(mod)], strict=True, stream=sink) == 1

    def test_run_missing_path_is_usage_error(self):
        assert run(["definitely/not/a/path"], stream=io.StringIO()) == 2

    def test_existing_non_python_file_is_usage_error(self, tmp_path):
        # `repro lint README.md` must fail loudly, not report "clean"
        readme = tmp_path / "README.md"
        readme.write_text("# docs, not code\n")
        with pytest.raises(UsageError, match="not a python file"):
            iter_python_files([readme])
        assert run([str(readme)], stream=io.StringIO()) == 2

    def test_cli_non_python_file_exits_two(self, tmp_path, capsys):
        readme = tmp_path / "README.md"
        readme.write_text("# docs\n")
        assert main(["lint", str(readme)]) == 2
        assert "not a python file" in capsys.readouterr().err

    def test_cli_syntax_error_text_and_json(self, tmp_path, capsys):
        mod = tmp_path / "broken.py"
        mod.write_text("def broken(:\n")
        assert main(["lint", str(mod)]) == 1
        assert "E999" in capsys.readouterr().out
        assert main(["lint", str(mod), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert [d["rule"] for d in data] == ["E999"]
        assert "syntax error" in data[0]["message"]

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(BAD_SOURCE)
        rc = main(["lint", str(mod), "--format", "json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert {d["rule"] for d in data} == {"MPI001", "DET001"}

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("MPI001", "MPI002", "MPI003", "DET001", "PERF001", "PURE001", "ARCH002"):
            assert rid in out


class TestBaseline:
    def test_write_then_filter_round_trip(self, tmp_path):
        mod = tmp_path / "bad.py"
        mod.write_text(BAD_SOURCE)
        base = tmp_path / "lint-baseline.json"
        sink = io.StringIO()

        # adopt the current findings...
        assert run([str(mod)], baseline=str(base), update_baseline=True, stream=sink) == 0
        data = json.loads(base.read_text())
        assert data["version"] == 1
        assert data["count"] == len(data["fingerprints"]) > 0

        # ...then the same tree passes against the baseline
        assert run([str(mod)], baseline=str(base), stream=sink) == 0
        assert "suppressed" in sink.getvalue()

    def test_new_finding_not_masked_by_baseline(self, tmp_path):
        mod = tmp_path / "bad.py"
        mod.write_text(BAD_SOURCE)
        base = tmp_path / "baseline.json"
        sink = io.StringIO()
        assert run([str(mod)], baseline=str(base), update_baseline=True, stream=sink) == 0

        # introduce a fresh violation: only it should survive filtering
        mod.write_text(BAD_SOURCE + "\n\ndef g(comm):\n    comm.send('x', 1, tag=-1001)\n")
        sink = io.StringIO()
        assert run([str(mod)], baseline=str(base), stream=sink) == 1
        assert "MPI002" in sink.getvalue()
        assert "MPI001" not in sink.getvalue()

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        base = tmp_path / "baseline.json"
        base.write_text("{\"not\": \"fingerprints\"}")
        with pytest.raises(UsageError, match="malformed baseline"):
            load_baseline(base)
        assert run(["src"], baseline=str(base), stream=io.StringIO()) == 2

    def test_write_baseline_requires_baseline_path(self, tmp_path):
        mod = tmp_path / "ok.py"
        mod.write_text("x = 1\n")
        assert run([str(mod)], update_baseline=True, stream=io.StringIO()) == 2


class TestStats:
    def test_analyze_paths_reports_stats(self, tmp_path):
        mod = tmp_path / "bad.py"
        mod.write_text(BAD_SOURCE)
        result = analyze_paths([mod], cache=LintCache())
        assert result.stats.files == 1
        assert result.stats.parses == 1
        assert result.stats.cache_hits == 0
        assert result.stats.rule_counts == {"MPI001": 1, "DET001": 1}

    def test_cli_stats_flag_prints_report(self, tmp_path, capsys):
        mod = tmp_path / "ok.py"
        mod.write_text("def fn(comm):\n    comm.barrier()\n")
        assert main(["lint", str(mod), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "files analyzed:" in out
        assert "cache hits:" in out
        assert "project functions:" in out
