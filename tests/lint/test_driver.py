"""Driver-level tests: suppression, formats, file walking, exit codes."""

import io
import json
import textwrap

from repro.cli import main
from repro.lint import (
    Severity,
    all_rules,
    format_findings,
    iter_python_files,
    lint_paths,
    lint_source,
    run,
)

BAD_SOURCE = textwrap.dedent(
    """
    import numpy as np

    def fn(comm):
        if comm.rank == 0:
            comm.bcast(np.random.rand(4), root=0)
    """
)


class TestRegistry:
    def test_all_rules_registered(self):
        ids = [r.id for r in all_rules()]
        assert ids == ["ARCH001", "DET001", "MPI001", "MPI002", "MPI003", "PERF001", "PERF002"]

    def test_every_rule_has_summary_and_severity(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.severity in (Severity.WARNING, Severity.ERROR)


class TestSuppression:
    def test_noqa_with_rule_id(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa: MPI002\n"
        assert lint_source(src) == []

    def test_bare_noqa_silences_all(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa\n"
        assert lint_source(src) == []

    def test_noqa_for_other_rule_does_not_silence(self):
        src = "def fn(comm):\n    comm.send('x', 1, tag=-1000)  # noqa: DET001\n"
        assert [f.rule for f in lint_source(src)] == ["MPI002"]


class TestFormats:
    def test_text_format_is_pyflakes_style(self):
        fs = lint_source(BAD_SOURCE, path="pkg/mod.py")
        assert fs, "fixture should produce findings"
        line = format_findings(fs).splitlines()[0]
        path_part, line_no, col, rest = line.split(":", 3)
        assert path_part == "pkg/mod.py"
        assert line_no.isdigit() and col.isdigit()

    def test_json_format_round_trips(self):
        fs = lint_source(BAD_SOURCE, path="pkg/mod.py")
        data = json.loads(format_findings(fs, fmt="json"))
        assert {d["rule"] for d in data} == {f.rule for f in fs}
        assert all({"path", "line", "col", "severity", "message"} <= d.keys() for d in data)

    def test_findings_sorted_by_location(self):
        fs = lint_source(BAD_SOURCE)
        assert fs == sorted(fs)

    def test_syntax_error_becomes_finding(self):
        fs = lint_source("def broken(:\n", path="bad.py")
        assert len(fs) == 1
        assert fs[0].rule == "E999"
        assert fs[0].severity is Severity.ERROR


class TestPathsAndExitCodes:
    def _tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(BAD_SOURCE)
        (tmp_path / "pkg" / "good.py").write_text("def fn(comm):\n    comm.barrier()\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import random\n")
        return tmp_path / "pkg"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        pkg = self._tree(tmp_path)
        names = [p.name for p in iter_python_files([pkg])]
        assert names == ["bad.py", "good.py"]

    def test_lint_paths_finds_only_bad_file(self, tmp_path):
        pkg = self._tree(tmp_path)
        fs = lint_paths([pkg])
        assert {f.rule for f in fs} == {"MPI001", "DET001"}
        assert all(f.path.endswith("bad.py") for f in fs)

    def test_run_exit_codes(self, tmp_path):
        pkg = self._tree(tmp_path)
        sink = io.StringIO()
        assert run([str(pkg / "good.py")], stream=sink) == 0
        assert run([str(pkg)], stream=sink) == 1  # MPI001 is an error
        assert run([str(pkg)], strict=True, stream=sink) == 1

    def test_run_warning_only_tree(self, tmp_path):
        mod = tmp_path / "warn.py"
        mod.write_text("import random\nx = random.random()\n")
        sink = io.StringIO()
        assert run([str(mod)], stream=sink) == 0  # warnings pass by default
        assert run([str(mod)], strict=True, stream=sink) == 1

    def test_run_missing_path_is_usage_error(self):
        assert run(["definitely/not/a/path"], stream=io.StringIO()) == 2

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text(BAD_SOURCE)
        rc = main(["lint", str(mod), "--format", "json"])
        assert rc == 1
        data = json.loads(capsys.readouterr().out)
        assert {d["rule"] for d in data} == {"MPI001", "DET001"}

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("MPI001", "MPI002", "MPI003", "DET001", "PERF001"):
            assert rid in out
