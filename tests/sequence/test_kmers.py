"""Unit + property tests for k-mer packing and extraction."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence import dna, kmers

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=120)


class TestPackUnpack:
    def test_pack_simple(self):
        # "AC" = 0*4 + 1
        assert kmers.pack_kmer(dna.encode("AC")) == 1

    def test_pack_t_run(self):
        assert kmers.pack_kmer(dna.encode("TT")) == 15

    def test_pack_rejects_n(self):
        with pytest.raises(ValueError, match="containing N"):
            kmers.pack_kmer(dna.encode("AN"))

    def test_pack_rejects_too_long(self):
        with pytest.raises(ValueError):
            kmers.pack_kmer(np.zeros(40, dtype=np.uint8))

    @given(dna_strings.filter(lambda s: len(s) <= 31))
    def test_roundtrip(self, s):
        codes = dna.encode(s)
        assert dna.decode(kmers.unpack_kmer(kmers.pack_kmer(codes), len(s))) == s

    def test_max_k(self):
        assert kmers.max_k_for_dtype(np.int64) == 31
        assert kmers.max_k_for_dtype(np.int32) == 15


class TestRevcompKmerCode:
    @given(dna_strings.filter(lambda s: len(s) <= 31))
    def test_matches_sequence_revcomp(self, s):
        codes = dna.encode(s)
        k = len(s)
        expect = kmers.pack_kmer(dna.reverse_complement(codes))
        assert kmers.revcomp_kmer_code(kmers.pack_kmer(codes), k) == expect

    def test_vectorised(self):
        vals = np.array([kmers.pack_kmer(dna.encode("ACG")), kmers.pack_kmer(dna.encode("TTT"))])
        rc = kmers.revcomp_kmer_code(vals, 3)
        assert rc.tolist() == [
            kmers.pack_kmer(dna.encode("CGT")),
            kmers.pack_kmer(dna.encode("AAA")),
        ]

    @given(dna_strings.filter(lambda s: len(s) <= 31))
    def test_involution(self, s):
        k = len(s)
        v = kmers.pack_kmer(dna.encode(s))
        assert kmers.revcomp_kmer_code(kmers.revcomp_kmer_code(v, k), k) == v


class TestKmerCodes:
    def test_window_count(self):
        vals = kmers.kmer_codes(dna.encode("ACGTAC"), 3)
        assert vals.size == 4

    def test_short_sequence_empty(self):
        assert kmers.kmer_codes(dna.encode("AC"), 3).size == 0

    def test_values_match_pack(self):
        codes = dna.encode("ACGTACGT")
        vals = kmers.kmer_codes(codes, 4)
        for i in range(len(vals)):
            assert vals[i] == kmers.pack_kmer(codes[i : i + 4])

    def test_n_window_is_minus_one(self):
        vals = kmers.kmer_codes(dna.encode("ANGT"), 2)
        assert vals.tolist()[0] == -1 or vals[0] >= 0  # first window AN invalid
        assert (vals == -1).sum() == 2  # AN and NG

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmers.kmer_codes(dna.encode("ACGT"), 0)

    @given(dna_strings, st.integers(min_value=1, max_value=12))
    def test_count_property(self, s, k):
        vals = kmers.kmer_codes(dna.encode(s), k)
        assert vals.size == max(0, len(s) - k + 1)


class TestKmerPositions:
    def test_skips_n(self):
        pos, vals = kmers.kmer_positions(dna.encode("ACNGT"), 2)
        assert pos.tolist() == [0, 3]
        assert (vals >= 0).all()


class TestCanonical:
    def test_canonical_le_both(self):
        codes = dna.encode("ACGTAGCTT")
        k = 4
        canon = kmers.canonical_kmer_codes(codes, k)
        plain = kmers.kmer_codes(codes, k)
        rc = kmers.revcomp_kmer_code(plain, k)
        assert (canon == np.minimum(plain, rc)).all()

    @given(dna_strings, st.integers(min_value=1, max_value=9))
    def test_strand_invariance(self, s, k):
        if len(s) < k:
            return
        fwd = kmers.canonical_kmer_codes(dna.encode(s), k)
        rev = kmers.canonical_kmer_codes(dna.reverse_complement(dna.encode(s)), k)
        assert sorted(fwd.tolist()) == sorted(rev.tolist())
