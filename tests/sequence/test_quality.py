"""Unit tests for Phred handling and the Focus trimming rule."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence import dna, quality


class TestPhredCodec:
    def test_encode(self):
        assert quality.encode_phred(np.array([0, 40])) == "!I"

    def test_decode(self):
        assert quality.decode_phred("!I").tolist() == [0, 40]

    @given(st.lists(st.integers(min_value=0, max_value=93), max_size=100))
    def test_roundtrip(self, quals):
        arr = np.array(quals, dtype=np.int64)
        assert quality.decode_phred(quality.encode_phred(arr)).tolist() == quals

    def test_encode_out_of_range(self):
        with pytest.raises(ValueError):
            quality.encode_phred(np.array([94]))

    def test_decode_below_offset(self):
        with pytest.raises(ValueError):
            quality.decode_phred(" ")

    def test_error_probabilities(self):
        probs = quality.error_probabilities(np.array([0, 10, 20]))
        assert probs == pytest.approx([1.0, 0.1, 0.01])


class TestSlidingWindowTrim:
    def test_good_read_untouched(self):
        quals = np.full(50, 40)
        assert quality.sliding_window_trim_index(quals, window=10, min_quality=20) == 50

    def test_bad_tail_trimmed(self):
        quals = np.concatenate([np.full(40, 40), np.full(20, 2)])
        keep = quality.sliding_window_trim_index(quals, window=10, min_quality=20)
        # The first passing window (from the 3' end) ends somewhere in
        # the transition zone: all of the pure-bad tail must go.
        assert 40 <= keep < 55

    def test_all_bad_discards(self):
        assert quality.sliding_window_trim_index(np.full(30, 2), window=10, min_quality=20) == 0

    def test_short_read_single_window(self):
        assert quality.sliding_window_trim_index(np.full(5, 30), window=10, min_quality=20) == 5
        assert quality.sliding_window_trim_index(np.full(5, 10), window=10, min_quality=20) == 0

    def test_empty(self):
        assert quality.sliding_window_trim_index(np.array([]), window=10) == 0

    def test_threshold_strict(self):
        # mean exactly == threshold does not pass
        assert quality.sliding_window_trim_index(np.full(10, 20), window=10, min_quality=20) == 0

    def test_step_respected(self):
        quals = np.concatenate([np.full(30, 40), np.full(4, 0)])
        keep2 = quality.sliding_window_trim_index(quals, window=10, step=2, min_quality=20)
        keep1 = quality.sliding_window_trim_index(quals, window=10, step=1, min_quality=20)
        assert keep1 >= 30 and keep2 >= 30

    def test_bad_params(self):
        with pytest.raises(ValueError):
            quality.sliding_window_trim_index(np.full(5, 30), window=0)
        with pytest.raises(ValueError):
            quality.sliding_window_trim_index(np.full(5, 30), window=5, step=0)

    @given(st.lists(st.integers(min_value=0, max_value=41), min_size=1, max_size=150))
    def test_keep_never_exceeds_length(self, quals):
        arr = np.array(quals)
        keep = quality.sliding_window_trim_index(arr, window=10, min_quality=20)
        assert 0 <= keep <= arr.size

    @given(st.lists(st.integers(min_value=21, max_value=41), min_size=1, max_size=150))
    def test_all_good_keeps_everything(self, quals):
        arr = np.array(quals)
        assert quality.sliding_window_trim_index(arr, window=10, min_quality=20) == arr.size


class TestTrimRead:
    def test_fixed_trims(self):
        codes = dna.encode("AACCGGTT")
        out, _ = quality.trim_read(codes, None, trim5=2, trim3=3)
        assert dna.decode(out) == "CCG"

    def test_overlong_trims_yield_empty(self):
        codes = dna.encode("ACGT")
        out, _ = quality.trim_read(codes, None, trim5=3, trim3=3)
        assert out.size == 0

    def test_negative_trim_raises(self):
        with pytest.raises(ValueError):
            quality.trim_read(dna.encode("ACGT"), None, trim5=-1)

    def test_quality_trim_applied(self):
        codes = dna.encode("A" * 50)
        quals = np.concatenate([np.full(35, 40), np.full(15, 2)])
        out, q = quality.trim_read(codes, quals, window=10, min_quality=20)
        assert out.size == q.size
        assert out.size < 50

    def test_fasta_mode_no_quality_trim(self):
        codes = dna.encode("ACGTACGT")
        out, q = quality.trim_read(codes, None)
        assert dna.decode(out) == "ACGTACGT"
        assert q is None

    def test_mismatched_quals_raise(self):
        with pytest.raises(ValueError):
            quality.trim_read(dna.encode("ACGT"), np.array([40, 40]))
