"""Unit tests for 2-bit DNA encoding and base operations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence import dna

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=200)
dna_strings_n = st.text(alphabet="ACGTN", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_encode_basic(self):
        assert dna.encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_encode_lowercase(self):
        assert dna.encode("acgtn").tolist() == [0, 1, 2, 3, 4]

    def test_encode_empty(self):
        assert dna.encode("").size == 0

    def test_encode_bytes(self):
        assert dna.encode(b"AC").tolist() == [0, 1]

    def test_encode_invalid_raises(self):
        with pytest.raises(ValueError, match="invalid DNA character"):
            dna.encode("ACGX")

    def test_decode_basic(self):
        assert dna.decode(np.array([0, 1, 2, 3, 4], dtype=np.uint8)) == "ACGTN"

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            dna.decode(np.array([7], dtype=np.uint8))

    @given(dna_strings_n)
    def test_roundtrip(self, s):
        assert dna.decode(dna.encode(s)) == s.upper()


class TestComplement:
    def test_complement_pairs(self):
        assert dna.decode(dna.complement(dna.encode("ACGTN"))) == "TGCAN"

    def test_reverse_complement(self):
        assert dna.decode(dna.reverse_complement(dna.encode("AACGT"))) == "ACGTT"

    @given(dna_strings_n)
    def test_revcomp_involution(self, s):
        codes = dna.encode(s)
        assert dna.decode(dna.reverse_complement(dna.reverse_complement(codes))) == s.upper()

    @given(dna_strings)
    def test_revcomp_reverses_gc(self, s):
        codes = dna.encode(s)
        assert dna.gc_content(codes) == pytest.approx(dna.gc_content(dna.reverse_complement(codes)))


class TestGcContent:
    def test_all_gc(self):
        assert dna.gc_content(dna.encode("GCGC")) == 1.0

    def test_no_gc(self):
        assert dna.gc_content(dna.encode("ATAT")) == 0.0

    def test_empty_is_zero(self):
        assert dna.gc_content(dna.encode("")) == 0.0

    def test_n_excluded(self):
        assert dna.gc_content(dna.encode("GNNA")) == pytest.approx(0.5)


class TestHammingIdentity:
    def test_identical(self):
        a = dna.encode("ACGT")
        assert dna.hamming_identity(a, a) == 1.0

    def test_half(self):
        assert dna.hamming_identity(dna.encode("AAAA"), dna.encode("AATT")) == 0.5

    def test_empty(self):
        assert dna.hamming_identity(dna.encode(""), dna.encode("")) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            dna.hamming_identity(dna.encode("A"), dna.encode("AA"))


class TestValidity:
    def test_valid_with_n(self):
        assert dna.is_valid_codes(dna.encode("ACGTN"))

    def test_invalid_n_when_disallowed(self):
        assert not dna.is_valid_codes(dna.encode("ACGTN"), allow_n=False)

    def test_empty_valid(self):
        assert dna.is_valid_codes(np.array([], dtype=np.uint8))
