"""Shared fixtures for the fault-tolerance suite."""

import numpy as np
import pytest

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.mpi.timing import CommCostModel
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def small_reads(genome_len=6000, coverage=10, seed=3):
    g = Genome("g", random_genome(genome_len, np.random.default_rng(seed)))
    cfg = ReadSimConfig(read_length=100, coverage=coverage, seed=seed)
    return ReadSimulator(cfg).simulate_genome(g)


def contig_key(result):
    return sorted(c.tobytes() for c in result.contigs)


@pytest.fixture(scope="package")
def prepared():
    """One prepared small assembly shared by the whole fault suite."""
    assembler = FocusAssembler(
        AssemblyConfig(backend_workers=2), cost_model=FAST
    )
    return assembler, assembler.prepare(small_reads())


@pytest.fixture(scope="package")
def baseline(prepared):
    """Fault-free serial contigs: the byte-identity reference."""
    assembler, prep = prepared
    result = assembler.finish(prep, n_partitions=4, backend="serial")
    return contig_key(result)
