"""Checkpoint/resume: interrupted runs restart from the last good stage.

Interruption is simulated deterministically: a fault plan with an
inexhaustible fault budget plus ``fallback_serial=False`` makes the
targeted stage fail after the checkpoint of its predecessor was
written — exactly the state a crashed run leaves on disk.
"""

import pytest

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.faults import FaultPlan, KernelFault, RetryPolicy, StageExecutionError

from tests.faults.conftest import FAST, contig_key

#: fails fast and hard at the targeted stage (no fallback, no backoff).
INTERRUPT = RetryPolicy(
    max_attempts=2, backoff_base=0.0, backoff_cap=0.0, fallback_serial=False
)


def interrupted_at(stage):
    """Config whose run dies at ``stage``, like a crashed process."""
    return AssemblyConfig(
        backend_workers=2,
        retry=INTERRUPT,
        fault_plan=FaultPlan(
            kernel_faults=(KernelFault("error", stage, 0, attempts=99),)
        ),
    )


class TestResume:
    def test_resume_skips_completed_trim_stages(
        self, prepared, baseline, tmp_path
    ):
        assembler, prep = prepared
        ckpt = tmp_path / "ck.npz"
        crashed = FocusAssembler(interrupted_at("dead_ends"), cost_model=FAST)
        with pytest.raises(StageExecutionError):
            crashed.finish(prep, n_partitions=4, checkpoint=ckpt, backend="serial")

        result = assembler.finish(
            prep, n_partitions=4, backend="serial", checkpoint=ckpt, resume=True
        )
        assert contig_key(result) == baseline
        # transitive+containment were restored, dead_ends onward re-ran:
        # the trim timer exists but the restored stage times come from
        # the checkpoint.
        assert "trim" in result.timer.durations
        for stage in ("transitive", "containment", "dead_ends", "bubbles"):
            assert stage in result.virtual_times

    def test_resume_after_trim_skips_trim_entirely(
        self, prepared, baseline, tmp_path
    ):
        assembler, prep = prepared
        ckpt = tmp_path / "ck.npz"
        crashed = FocusAssembler(interrupted_at("traversal"), cost_model=FAST)
        with pytest.raises(StageExecutionError):
            crashed.finish(prep, n_partitions=4, checkpoint=ckpt, backend="serial")

        result = assembler.finish(
            prep, n_partitions=4, backend="serial", checkpoint=ckpt, resume=True
        )
        assert contig_key(result) == baseline
        # Every trim stage was restored: the StageTimer must not have
        # opened a "trim" stage at all (nothing was executed).
        assert "trim" not in result.timer.durations
        assert "traverse" in result.timer.durations
        assert result.virtual_times["trim_total"] >= 0.0

    def test_resume_of_finished_checkpoint_runs_no_stage(
        self, prepared, baseline, tmp_path
    ):
        assembler, prep = prepared
        ckpt = tmp_path / "ck.npz"
        assembler.finish(
            prep, n_partitions=4, backend="serial", checkpoint=ckpt
        )
        result = assembler.finish(
            prep, n_partitions=4, backend="serial", checkpoint=ckpt, resume=True
        )
        assert contig_key(result) == baseline
        assert "trim" not in result.timer.durations
        assert "traverse" not in result.timer.durations

    def test_resume_across_backends(self, prepared, baseline, tmp_path):
        # Contigs are backend-identical, so a checkpoint written under
        # serial may resume under sim.
        assembler, prep = prepared
        ckpt = tmp_path / "ck.npz"
        crashed = FocusAssembler(interrupted_at("bubbles"), cost_model=FAST)
        with pytest.raises(StageExecutionError):
            crashed.finish(prep, n_partitions=4, checkpoint=ckpt, backend="serial")
        result = assembler.finish(
            prep, n_partitions=4, backend="sim", checkpoint=ckpt, resume=True
        )
        assert contig_key(result) == baseline

    def test_missing_checkpoint_starts_fresh(self, prepared, baseline, tmp_path):
        assembler, prep = prepared
        result = assembler.finish(
            prep,
            n_partitions=4,
            backend="serial",
            checkpoint=tmp_path / "never_written.npz",
            resume=True,
        )
        assert contig_key(result) == baseline
        assert "trim" in result.timer.durations

    def test_mismatched_fingerprint_refused(self, prepared, tmp_path):
        assembler, prep = prepared
        ckpt = tmp_path / "ck.npz"
        assembler.finish(prep, n_partitions=4, backend="serial", checkpoint=ckpt)
        with pytest.raises(ValueError, match="does not match"):
            assembler.finish(
                prep, n_partitions=2, backend="serial", checkpoint=ckpt, resume=True
            )

    def test_resume_requires_checkpoint_path(self, prepared):
        assembler, prep = prepared
        with pytest.raises(ValueError, match="requires a checkpoint"):
            assembler.finish(prep, n_partitions=4, resume=True)
