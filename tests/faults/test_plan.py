"""Unit tests for FaultPlan / RetryPolicy / FaultReport."""

import pytest

from repro.faults import (
    KERNEL_FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    FaultReport,
    KernelFault,
    MessageFault,
    RetryPolicy,
)


class TestKernelFault:
    def test_attempt_gating(self):
        spec = KernelFault("error", "transitive", 1, attempts=2)
        assert spec.matches("transitive", 1, 1)
        assert spec.matches("transitive", 1, 2)
        assert not spec.matches("transitive", 1, 3)
        assert not spec.matches("transitive", 0, 1)
        assert not spec.matches("bubbles", 1, 1)

    def test_wildcard_stage(self):
        spec = KernelFault("crash", "*", 0)
        assert spec.matches("transitive", 0, 1)
        assert spec.matches("traversal", 0, 1)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel fault kind"):
            KernelFault("explode", "transitive", 0)


class TestMessageFault:
    def test_src_equals_dst_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            MessageFault("drop", "*", 1, 1)

    def test_attempt_gating(self):
        spec = MessageFault("delay", "bubbles", 0, 1, attempts=1)
        assert spec.matches_attempt("bubbles", 1)
        assert not spec.matches_attempt("bubbles", 2)
        assert not spec.matches_attempt("transitive", 1)


class TestFaultPlan:
    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            kernel_faults=(
                KernelFault("error", "transitive", 0),
                KernelFault("crash", "*", 0),
            )
        )
        assert plan.kernel_fault("transitive", 0, 1).kind == "error"
        assert plan.kernel_fault("bubbles", 0, 1).kind == "crash"
        assert plan.kernel_fault("bubbles", 0, 2) is None

    def test_max_fault_attempts(self):
        assert FaultPlan().max_fault_attempts == 0
        plan = FaultPlan(
            kernel_faults=(KernelFault("error", "*", 0, attempts=3),),
            message_faults=(MessageFault("drop", "*", 0, 1, attempts=2),),
        )
        assert plan.max_fault_attempts == 3

    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(
            kernel_faults=(KernelFault("error", "*", 0),)
        ).empty

    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=7,
            kernel_faults=(KernelFault("hang", "traversal", 2, attempts=2),),
            message_faults=(
                MessageFault("delay", "bubbles", 0, 3, count=2, delay=0.5),
            ),
            hang_seconds=1.5,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="must be an object"):
            FaultPlan.from_json("[1, 2]")

    def test_random_is_deterministic_and_serializable(self):
        stages = ("transitive", "bubbles", "traversal")
        a = FaultPlan.random(42, stages, n_parts=4)
        b = FaultPlan.random(42, stages, n_parts=4)
        assert a == b
        assert FaultPlan.from_json(a.to_json()) == a
        for spec in a.kernel_faults:
            assert spec.kind in KERNEL_FAULT_KINDS
            assert spec.stage in stages
            assert 0 <= spec.part < 4
        for spec in a.message_faults:
            assert spec.kind in MESSAGE_FAULT_KINDS
        assert FaultPlan.random(43, stages, n_parts=4) != a

    def test_random_single_partition_has_no_message_faults(self):
        plan = FaultPlan.random(1, ("transitive",), n_parts=1)
        assert plan.message_faults == ()

    def test_scaled_to_folds_indices(self):
        plan = FaultPlan(
            kernel_faults=(KernelFault("error", "*", 7),),
            message_faults=(
                MessageFault("drop", "*", 6, 3),
                MessageFault("duplicate", "*", 5, 1),
            ),
        )
        scaled = plan.scaled_to(2)
        assert scaled.kernel_faults[0].part == 1
        # 6%2 == 0, 3%2 == 1 -> survives; 5%2 == 1 == 1%2 -> dropped.
        assert len(scaled.message_faults) == 1
        assert (scaled.message_faults[0].src, scaled.message_faults[0].dst) == (0, 1)


class TestRetryPolicy:
    def test_allows(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1) and policy.allows(3)
        assert not policy.allows(4)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped, not 0.4

    def test_backoff_cap_holds_with_jitter_bound(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.35, jitter=0.5)
        for attempt in (1, 2, 3, 6):
            base = min(0.35, 0.1 * (2 ** (attempt - 1)))
            for token in range(8):
                value = policy.backoff(attempt, token=token)
                assert base <= value <= base * 1.5 + 1e-12

    def test_jitter_is_deterministic_per_token(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.3, jitter_seed=7)
        again = RetryPolicy(backoff_base=0.1, jitter=0.3, jitter_seed=7)
        assert policy.backoff(2, token=4) == again.backoff(2, token=4)
        assert policy.backoff(2, token="job-a") == again.backoff(2, token="job-a")

    def test_jitter_spreads_tokens(self):
        # The thundering-herd fix: distinct retry sites must not all
        # sleep the same time.
        policy = RetryPolicy(backoff_base=0.1, jitter=1.0, jitter_seed=1)
        waits = {policy.backoff(1, token=t) for t in range(16)}
        assert len(waits) > 1

    def test_jitter_seed_changes_the_stream(self):
        a = RetryPolicy(backoff_base=0.1, jitter=1.0, jitter_seed=1)
        b = RetryPolicy(backoff_base=0.1, jitter=1.0, jitter_seed=2)
        assert any(
            a.backoff(1, token=t) != b.backoff(1, token=t) for t in range(8)
        )

    def test_zero_jitter_keeps_historical_curve(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=1.0)
        assert policy.backoff(1, token=3) == pytest.approx(0.05)
        assert policy.backoff(2, token=3) == pytest.approx(0.1)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_dict_roundtrip(self):
        policy = RetryPolicy(max_attempts=5, task_deadline=1.0)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_dict_roundtrip_with_jitter(self):
        policy = RetryPolicy(jitter=0.25, jitter_seed=9)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_accepts_pre_jitter_payloads(self):
        legacy = {
            "max_attempts": 3,
            "backoff_base": 0.05,
            "backoff_cap": 1.0,
            "task_deadline": 30.0,
            "fallback_serial": True,
        }
        policy = RetryPolicy.from_dict(legacy)
        assert policy.jitter == 0.0


class TestFaultReport:
    def test_counters_and_summary(self):
        report = FaultReport()
        assert not report.has_activity
        assert report.summary() == "no faults"
        report.record_injected("crash", "transitive", "part 0")
        report.record_retry("transitive", "part 0", "InjectedCrashError")
        report.record_respawn("transitive", "BrokenProcessPool")
        report.record_recovery("transitive", "part 0")
        assert report.has_activity
        assert report.total_injected == 1
        assert report.retries == 1
        assert report.respawns == 1
        assert report.recovered_partitions == 1
        text = report.summary()
        assert "1 injected" in text and "1 respawns" in text

    def test_merge(self):
        a, b = FaultReport(), FaultReport()
        a.record_injected("error", "bubbles", "part 1")
        b.record_injected("error", "bubbles", "part 1")
        b.record_fallback("bubbles", "part 1")
        a.merge(b)
        assert a.total_injected == 2
        assert a.fallbacks == 1

    def test_event_log_is_bounded(self):
        report = FaultReport()
        for i in range(500):
            report.record_retry("s", f"part {i}", "E")
        assert report.retries == 500
        assert len(report.events) <= 200
        assert report.events_dropped > 0
        assert report.to_dict()["events_dropped"] == report.events_dropped
