"""ProcessBackend recovery: dead pools, hung workers, serial fallback.

These tests drive the backend directly (not through the assembler) so
they can kill real worker processes and inspect the pool.  The
acceptance case is the external ``kill -9`` of a live worker: the
backend must detect the broken pool, respawn its workers, re-run only
the unfinished partitions, and still produce the exact serial masks.
"""

import os
import signal

import pytest

from repro.distributed.dgraph import DistributedAssemblyGraph
from repro.faults import (
    FaultInjector,
    FaultPlan,
    KernelFault,
    RetryPolicy,
    StageExecutionError,
)
from repro.parallel.backend import ProcessBackend, SerialBackend

#: the finish stage sequence with the pipeline's default parameters.
STAGES = (
    ("transitive", {"tolerance": 2}),
    ("containment", {"min_overlap": 50, "min_identity": 0.9}),
    ("dead_ends", {"max_tip_bases": 150}),
    ("bubbles", {}),
    ("traversal", {}),
)

FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_base=0.0, backoff_cap=0.0, task_deadline=10.0
)


def fresh_dag(prepared):
    assembler, prep = prepared
    from repro.partition.multilevel import partition_via_hybrid

    part = partition_via_hybrid(prep.mls, prep.hyb, 4, assembler.config.partition)
    return DistributedAssemblyGraph(prep.assembly, part.labels_finest)


def run_all_stages(backend):
    paths = None
    for name, params in STAGES:
        paths = backend.run_stage(name, **params).result
    return paths


@pytest.fixture(scope="module")
def serial_reference(prepared):
    dag = fresh_dag(prepared)
    backend = SerialBackend(dag)
    paths = run_all_stages(backend)
    return dag.node_alive.copy(), dag.edge_alive.copy(), paths


def assert_matches_serial(dag, paths, serial_reference):
    node_alive, edge_alive, ref_paths = serial_reference
    assert (dag.node_alive == node_alive).all()
    assert (dag.edge_alive == edge_alive).all()
    assert paths == ref_paths


class TestExternalKill:
    def test_kill9_live_worker_recovered_by_respawn(
        self, prepared, serial_reference
    ):
        dag = fresh_dag(prepared)
        backend = ProcessBackend(dag, workers=2, retry=FAST_RETRY)
        try:
            first_name, first_params = STAGES[0]
            backend.run_stage(first_name, **first_params)
            pids = backend.worker_pids()
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            paths = None
            for name, params in STAGES[1:]:
                paths = backend.run_stage(name, **params).result
            assert_matches_serial(dag, paths, serial_reference)
            assert backend.fault_report.respawns >= 1
            # The pool really was rebuilt with fresh workers.
            assert backend.worker_pids() != pids
        finally:
            backend.close()


class TestInjectedFaults:
    def test_injected_crash_is_a_real_sigkill_recovered(
        self, prepared, serial_reference
    ):
        plan = FaultPlan(
            kernel_faults=(KernelFault("crash", "containment", 1),)
        )
        dag = fresh_dag(prepared)
        backend = ProcessBackend(
            dag, workers=2, retry=FAST_RETRY, injector=FaultInjector(plan)
        )
        try:
            paths = run_all_stages(backend)
            assert_matches_serial(dag, paths, serial_reference)
            report = backend.fault_report
            assert report.injected.get("crash") == 1
            assert report.respawns >= 1
            assert report.recovered_partitions >= 1
            assert report.fallbacks == 0
        finally:
            backend.close()

    def test_hung_worker_killed_at_deadline_and_recovered(
        self, prepared, serial_reference
    ):
        # hang_seconds far beyond the deadline: recovery must come from
        # the pool kill, not from riding out the sleep.
        plan = FaultPlan(
            kernel_faults=(KernelFault("hang", "transitive", 0),),
            hang_seconds=30.0,
        )
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.0, backoff_cap=0.0, task_deadline=1.0
        )
        dag = fresh_dag(prepared)
        backend = ProcessBackend(
            dag, workers=2, retry=policy, injector=FaultInjector(plan)
        )
        try:
            paths = run_all_stages(backend)
            assert_matches_serial(dag, paths, serial_reference)
            report = backend.fault_report
            assert report.deadline_exceeded >= 1
            assert report.respawns >= 1
        finally:
            backend.close()


class TestBudgetExhaustion:
    def test_serial_fallback_after_budget(self, prepared, serial_reference):
        plan = FaultPlan(
            kernel_faults=(KernelFault("error", "bubbles", 3, attempts=99),)
        )
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, backoff_cap=0.0, task_deadline=10.0
        )
        dag = fresh_dag(prepared)
        backend = ProcessBackend(
            dag, workers=2, retry=policy, injector=FaultInjector(plan)
        )
        try:
            paths = run_all_stages(backend)
            assert_matches_serial(dag, paths, serial_reference)
            report = backend.fault_report
            assert report.fallbacks >= 1
            assert report.retries >= 1
        finally:
            backend.close()

    def test_no_fallback_raises_stage_execution_error(self, prepared):
        plan = FaultPlan(
            kernel_faults=(KernelFault("error", "transitive", 0, attempts=99),)
        )
        policy = RetryPolicy(
            max_attempts=2,
            backoff_base=0.0,
            backoff_cap=0.0,
            task_deadline=10.0,
            fallback_serial=False,
        )
        dag = fresh_dag(prepared)
        backend = ProcessBackend(
            dag, workers=2, retry=policy, injector=FaultInjector(plan)
        )
        try:
            with pytest.raises(StageExecutionError, match="transitive"):
                run_all_stages(backend)
        finally:
            backend.close()
