"""Chaos equivalence: faulted runs recover byte-identical contigs.

The fault-tolerance invariant (docs/robustness.md): under any seeded
FaultPlan whose faults fit the retry budget, every backend's final
contigs are byte-identical to the fault-free serial run — and the
fault report proves the faults actually fired.  The fast tier runs
one crafted plan per backend; the ``slow`` tier sweeps randomly
generated plans across the full backend matrix.
"""

import pytest

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.faults import FaultPlan, KernelFault, MessageFault, RetryPolicy
from repro.parallel.backend import BACKEND_NAMES

from tests.faults.conftest import contig_key

#: fast in-test policy: no real backoff sleeping, quick hang detection.
POLICY = RetryPolicy(
    max_attempts=3, backoff_base=0.0, backoff_cap=0.0, task_deadline=5.0
)

#: one fault of every kernel kind, spread across stages/partitions.
KERNEL_PLAN = FaultPlan(
    kernel_faults=(
        KernelFault("error", "transitive", 0),
        KernelFault("crash", "dead_ends", 2),
        KernelFault("hang", "traversal", 1),
    ),
    hang_seconds=0.5,
)

#: one fault of every message kind (sim backend only).
MESSAGE_PLAN = FaultPlan(
    message_faults=(
        MessageFault("drop", "transitive", 1, 0),
        MessageFault("duplicate", "containment", 2, 0),
        MessageFault("delay", "bubbles", 3, 0, delay=0.1),
    ),
)


def faulted_assembler(assembler, plan):
    cfg = AssemblyConfig(
        backend_workers=2, retry=POLICY, fault_plan=plan
    )
    return FocusAssembler(cfg, cost_model=assembler.cost_model)


class TestChaosSmoke:
    """Fast tier: crafted plans, every backend, byte-identity."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_kernel_faults_recovered(self, prepared, baseline, backend):
        assembler, prep = prepared
        chaos = faulted_assembler(assembler, KERNEL_PLAN)
        result = chaos.finish(prep, n_partitions=4, backend=backend)
        assert contig_key(result) == baseline, backend
        report = result.fault_report
        assert report is not None and report.has_activity
        assert report.total_injected >= 1
        assert report.retries >= 1
        assert report.fallbacks == 0

    def test_message_faults_recovered_on_sim(self, prepared, baseline):
        assembler, prep = prepared
        chaos = faulted_assembler(assembler, MESSAGE_PLAN)
        result = chaos.finish(prep, n_partitions=4, backend="sim")
        assert contig_key(result) == baseline
        report = result.fault_report
        assert report is not None and report.has_activity
        # delay and duplicate are absorbed in-flight; the drop forces
        # at least one stage retry.
        assert set(report.injected) & {"drop", "duplicate", "delay"}

    def test_fault_report_serializes_and_summarizes(self, prepared):
        assembler, prep = prepared
        chaos = faulted_assembler(assembler, KERNEL_PLAN)
        result = chaos.finish(prep, n_partitions=4, backend="serial")
        report = result.fault_report
        d = report.to_dict()
        assert d["total_injected"] == report.total_injected >= 1
        assert d["retries"] == report.retries >= 1
        assert "injected" in report.summary()
        assert "retries" in report.summary()

    def test_clean_run_reports_no_activity(self, prepared):
        assembler, prep = prepared
        result = assembler.finish(prep, n_partitions=4, backend="serial")
        assert result.fault_report is not None
        assert not result.fault_report.has_activity


@pytest.mark.slow
class TestChaosMatrix:
    """Slow tier: random seeded plans x all backends x both plans."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_random_plans_recovered(self, prepared, baseline, backend, seed):
        from repro.distributed.stages import all_stages

        assembler, prep = prepared
        stages = tuple(spec.name for spec in all_stages())
        plan = FaultPlan.random(
            seed, stages, n_parts=4, n_kernel_faults=3, n_message_faults=2
        )
        plan = FaultPlan(
            seed=plan.seed,
            kernel_faults=plan.kernel_faults,
            message_faults=plan.message_faults,
            hang_seconds=0.5,
        )
        chaos = faulted_assembler(assembler, plan)
        result = chaos.finish(prep, n_partitions=4, backend=backend)
        assert contig_key(result) == baseline, (backend, seed)
        assert result.fault_report.has_activity
