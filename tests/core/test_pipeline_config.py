"""Unit tests for StageTimer and AssemblyConfig."""

import json
import time

import pytest

from repro.core.config import AssemblyConfig
from repro.core.pipeline import StageTimer


class TestStageTimer:
    def test_stage_records(self):
        t = StageTimer()
        with t.stage("a"):
            time.sleep(0.01)
        assert t.durations["a"] >= 0.01
        assert t.total == pytest.approx(t.durations["a"])

    def test_stage_accumulates(self):
        t = StageTimer()
        with t.stage("a"):
            pass
        first = t.durations["a"]
        with t.stage("a"):
            time.sleep(0.005)
        assert t.durations["a"] > first

    def test_record_external(self):
        t = StageTimer()
        t.record("virtual", 1.5)
        assert t.durations["virtual"] == 1.5

    def test_record_negative(self):
        with pytest.raises(ValueError):
            StageTimer().record("x", -1)

    def test_report(self):
        t = StageTimer()
        t.record("align", 2.0)
        rep = t.report()
        assert "align" in rep and "total" in rep

    def test_report_empty(self):
        assert "no stages" in StageTimer().report()

    def test_exception_still_recorded(self):
        t = StageTimer()
        with pytest.raises(RuntimeError):
            with t.stage("boom"):
                raise RuntimeError
        assert "boom" in t.durations

    def test_to_json_stages_and_total(self):
        t = StageTimer()
        t.record("align", 2.0)
        t.record("trim", 0.5)
        payload = json.loads(t.to_json())
        assert payload["stages"] == {"align": 2.0, "trim": 0.5}
        assert payload["total"] == pytest.approx(2.5)

    def test_to_json_metadata_tags(self):
        t = StageTimer()
        t.record("align", 1.0)
        payload = json.loads(
            t.to_json(backend="process", distributed={"time_kind": "wall"})
        )
        assert payload["backend"] == "process"
        assert payload["distributed"]["time_kind"] == "wall"


class TestAssemblyConfig:
    def test_defaults_valid(self):
        AssemblyConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(n_partitions=3),
            dict(n_partitions=0),
            dict(partition_mode="metis"),
            dict(min_read_length=0),
            dict(backend="threads"),
            dict(backend_workers=-1),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            AssemblyConfig(**kw)

    @pytest.mark.parametrize("backend", ["serial", "sim", "process"])
    def test_backend_names_accepted(self, backend):
        assert AssemblyConfig(backend=backend).backend == backend
