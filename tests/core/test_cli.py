"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io.fasta import parse_fasta
from repro.io.fastq import parse_fastq


@pytest.fixture
def genome_fasta(tmp_path):
    path = tmp_path / "genome.fasta"
    assert main(["simulate-genome", "--length", "6000", "--seed", "1", "-o", str(path)]) == 0
    return path


@pytest.fixture
def reads_fastq(tmp_path, genome_fasta):
    path = tmp_path / "reads.fastq"
    rc = main(
        ["simulate-reads", "--genome", str(genome_fasta), "--coverage", "10",
         "--seed", "1", "-o", str(path)]
    )
    assert rc == 0
    return path


class TestSimulateCommands:
    def test_simulate_genome(self, genome_fasta):
        recs = list(parse_fasta(genome_fasta))
        assert len(recs) == 1
        assert len(recs[0]) == 6000

    def test_simulate_reads(self, reads_fastq):
        reads = list(parse_fastq(reads_fastq))
        assert len(reads) == 600
        assert all(len(r) == 100 for r in reads)
        assert all(r.quals is not None for r in reads)

    def test_simulate_reads_missing_genome(self, tmp_path):
        empty = tmp_path / "empty.fasta"
        empty.write_text("")
        rc = main(["simulate-reads", "--genome", str(empty), "-o", str(tmp_path / "r.fq")])
        assert rc == 1

    def test_simulate_community(self, tmp_path):
        reads_path = tmp_path / "community.fastq"
        refs_path = tmp_path / "refs.fasta"
        rc = main(
            ["simulate-community", "--seed", "3", "--coverage", "2",
             "--shared-length", "1500", "--private-length", "1000",
             "-o", str(reads_path), "--refs", str(refs_path)]
        )
        assert rc == 0
        assert len(list(parse_fastq(reads_path))) > 100
        refs = list(parse_fasta(refs_path))
        assert len(refs) == 10  # the ten gut genera


class TestAssembleAndStats:
    def test_assemble_roundtrip(self, tmp_path, reads_fastq, capsys):
        contigs_path = tmp_path / "contigs.fasta"
        rc = main(
            ["assemble", str(reads_fastq), "-o", str(contigs_path), "--partitions", "2"]
        )
        assert rc == 0
        contigs = list(parse_fasta(contigs_path))
        assert len(contigs) >= 1
        assert sum(len(c) for c in contigs) > 3000
        out = capsys.readouterr().out
        assert "N50" in out

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_assemble_backend_flag(self, tmp_path, reads_fastq, capsys, backend):
        contigs_path = tmp_path / f"contigs_{backend}.fasta"
        rc = main(
            ["assemble", str(reads_fastq), "-o", str(contigs_path),
             "--partitions", "2", "--backend", backend]
        )
        assert rc == 0
        assert len(list(parse_fasta(contigs_path))) >= 1
        assert f"[{backend} backend]" in capsys.readouterr().out

    def test_assemble_backends_agree_on_contigs(self, tmp_path, reads_fastq):
        outputs = {}
        for backend in ("serial", "sim", "process"):
            path = tmp_path / f"c_{backend}.fasta"
            rc = main(
                ["assemble", str(reads_fastq), "-o", str(path),
                 "--partitions", "2", "--backend", backend]
            )
            assert rc == 0
            outputs[backend] = sorted(
                r.codes.tobytes() for r in parse_fasta(path)
            )
        assert outputs["serial"] == outputs["sim"] == outputs["process"]

    def test_assemble_timings_json(self, tmp_path, reads_fastq):
        import json

        contigs_path = tmp_path / "contigs.fasta"
        timings_path = tmp_path / "timings.json"
        rc = main(
            ["assemble", str(reads_fastq), "-o", str(contigs_path),
             "--partitions", "2", "--backend", "serial",
             "--timings", str(timings_path)]
        )
        assert rc == 0
        payload = json.loads(timings_path.read_text())
        assert payload["backend"] == "serial"
        assert payload["distributed"]["time_kind"] == "wall"
        for stage in ("align", "partition", "traverse"):
            assert stage in payload["stages"]
        for stage in ("transitive", "traversal"):
            assert stage in payload["distributed"]["stages"]
        assert payload["total"] == pytest.approx(sum(payload["stages"].values()))

    def test_assemble_unknown_backend_exits(self, tmp_path, reads_fastq):
        with pytest.raises(SystemExit):
            main(
                ["assemble", str(reads_fastq), "-o", str(tmp_path / "c.fasta"),
                 "--backend", "threads"]
            )

    def test_assemble_empty_input(self, tmp_path):
        empty = tmp_path / "none.fasta"
        empty.write_text("")
        rc = main(["assemble", str(empty), "-o", str(tmp_path / "c.fasta")])
        assert rc == 1

    def test_stats(self, tmp_path, capsys):
        path = tmp_path / "c.fasta"
        path.write_text(">a\n" + "A" * 300 + "\n>b\n" + "C" * 100 + "\n")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "N50:         300" in out
        assert "contigs:     2" in out

    def test_stats_empty(self, tmp_path):
        path = tmp_path / "c.fasta"
        path.write_text("")
        assert main(["stats", str(path)]) == 1

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
