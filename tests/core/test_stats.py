"""Unit tests for assembly statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import AssemblyStats, n50


class TestN50:
    def test_single_contig(self):
        assert n50([100]) == 100

    def test_classic_example(self):
        # total 100: sorted desc 40, 30, 20, 10; half = 50 reached at 30
        assert n50([10, 20, 30, 40]) == 30

    def test_equal_contigs(self):
        assert n50([50, 50]) == 50

    def test_empty(self):
        assert n50([]) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            n50([-1])

    def test_dominant_contig(self):
        assert n50([1000, 1, 1, 1]) == 1000

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50))
    def test_n50_is_a_contig_length(self, lengths):
        assert n50(lengths) in lengths

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=50))
    def test_n50_definition(self, lengths):
        value = n50(lengths)
        total = sum(lengths)
        covered = sum(x for x in lengths if x >= value)
        assert covered * 2 >= total


class TestAssemblyStats:
    def test_from_contigs(self):
        contigs = [np.zeros(100, dtype=np.uint8), np.zeros(50, dtype=np.uint8)]
        s = AssemblyStats.from_contigs(contigs)
        assert s.n_contigs == 2
        assert s.total_bases == 150
        assert s.max_contig == 100
        assert s.n50 == 100
        assert s.mean_contig == 75.0

    def test_empty(self):
        s = AssemblyStats.from_contigs([])
        assert s.n_contigs == 0
        assert s.n50 == 0
        assert s.mean_contig == 0.0
