"""Backend equivalence: serial, sim, and process must agree bit for bit.

The fast tier runs a small simulated genome across backends and
partition counts; the ``slow`` tier (excluded from tier-1, run with
``pytest -m slow``) repeats the check on the standard D1/D2 benchmark
datasets — the acceptance contract of the kernel/merge split.
"""

import numpy as np
import pytest

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.mpi.timing import CommCostModel
from repro.parallel.backend import BACKEND_NAMES
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def small_reads(genome_len=6000, coverage=10, seed=3):
    g = Genome("g", random_genome(genome_len, np.random.default_rng(seed)))
    cfg = ReadSimConfig(read_length=100, coverage=coverage, seed=seed)
    return ReadSimulator(cfg).simulate_genome(g)


def contig_key(result):
    return sorted(c.tobytes() for c in result.contigs)


def finish_all_backends(assembler, prep, k):
    """result per backend name at partition count ``k``."""
    return {
        name: assembler.finish(prep, n_partitions=k, backend=name)
        for name in BACKEND_NAMES
    }


@pytest.fixture(scope="module")
def small_prepared():
    assembler = FocusAssembler(
        AssemblyConfig(backend_workers=2), cost_model=FAST
    )
    return assembler, assembler.prepare(small_reads())


class TestSmallGenomeEquivalence:
    @pytest.mark.parametrize("k", [2, 4])
    def test_contigs_and_masks_identical(self, small_prepared, k):
        assembler, prep = small_prepared
        results = finish_all_backends(assembler, prep, k)
        base = results["serial"]
        for name in ("sim", "process"):
            res = results[name]
            assert contig_key(res) == contig_key(base), name
            assert (res.dag.node_alive == base.dag.node_alive).all(), name
            assert (res.dag.edge_alive == base.dag.edge_alive).all(), name
            assert res.paths == base.paths, name

    def test_result_is_tagged_with_backend(self, small_prepared):
        assembler, prep = small_prepared
        results = finish_all_backends(assembler, prep, 4)
        for name, res in results.items():
            assert res.backend == name
            assert res.time_kind == ("virtual" if name == "sim" else "wall")
            assert res.stage_times is res.virtual_times

    def test_repeat_runs_deterministic(self, small_prepared):
        assembler, prep = small_prepared
        a = assembler.finish(prep, n_partitions=4, backend="process")
        b = assembler.finish(prep, n_partitions=4, backend="process")
        assert contig_key(a) == contig_key(b)


@pytest.mark.slow
class TestStandardDatasetEquivalence:
    """D1/D2 across partition counts — the PR's acceptance gate."""

    @pytest.mark.parametrize("dataset_name", ["D1", "D2"])
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_backends_agree(self, dataset_name, k):
        from repro.bench.datasets import standard_datasets

        dataset = next(
            d for d in standard_datasets() if d.name == dataset_name
        )
        assembler = FocusAssembler(
            AssemblyConfig(backend_workers=2), cost_model=FAST
        )
        prep = assembler.prepare(dataset.reads)
        results = finish_all_backends(assembler, prep, k)
        base = results["serial"]
        for name in ("sim", "process"):
            res = results[name]
            assert contig_key(res) == contig_key(base), (dataset_name, k, name)
            assert (res.dag.node_alive == base.dag.node_alive).all()
            assert (res.dag.edge_alive == base.dag.edge_alive).all()
