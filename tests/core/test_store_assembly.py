"""Sharded-store assemblies are byte-identical to in-RAM on every backend."""

import numpy as np
import pytest

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler
from repro.io.readset import ReadSet
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator
from repro.store import ShardedReadSet, pack_reads


@pytest.fixture(scope="module")
def sim_reads():
    rng = np.random.default_rng(7)
    genome = Genome("g", random_genome(2500, rng))
    sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=8.0, seed=7))
    return list(sim.simulate_genome(genome))


@pytest.fixture(scope="module")
def store_path(sim_reads, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("stores") / "reads.store")
    pack_reads(iter(sim_reads), path, shard_size=31)
    return path


def config_for(backend, store_path=None):
    return AssemblyConfig(
        backend=backend,
        n_partitions=2,
        store_path=store_path,
        cache_budget=1 << 20,
    )


class TestStoreBackedAssembly:
    @pytest.mark.parametrize("backend", ["serial", "sim", "process"])
    def test_contigs_byte_identical(self, backend, sim_reads, store_path):
        assembler = FocusAssembler(config_for(backend, store_path))
        ram = assembler.assemble(ReadSet(sim_reads))
        stored = assembler.assemble()  # dispatches to the store
        assert len(stored.contigs) == len(ram.contigs)
        for a, b in zip(ram.contigs, stored.contigs):
            assert a.tobytes() == b.tobytes()

    def test_preprocessing_stays_shard_backed(self, store_path):
        assembler = FocusAssembler(config_for("serial", store_path))
        prep = assembler.prepare(assembler.open_reads())
        assert isinstance(prep.reads, ShardedReadSet)

    def test_open_reads_requires_store_path(self):
        assembler = FocusAssembler(config_for("serial"))
        with pytest.raises(ValueError, match="store_path"):
            assembler.open_reads()

    def test_assemble_without_reads_or_store_fails(self):
        assembler = FocusAssembler(config_for("serial"))
        with pytest.raises(ValueError):
            assembler.assemble()

    def test_fingerprint_tracks_store(self, sim_reads, store_path):
        """Checkpoint fingerprints must distinguish store-backed runs."""
        assembler = FocusAssembler(config_for("serial", store_path))
        prep_ram = assembler.prepare(ReadSet(sim_reads))
        prep_store = assembler.prepare(assembler.open_reads())
        fp_ram = assembler._fingerprint(prep_ram, k=2, mode="hybrid")
        fp_store = assembler._fingerprint(prep_store, k=2, mode="hybrid")
        assert fp_ram["store"] is None
        assert fp_store["store"] is not None
        assert fp_ram != fp_store
