"""Integration tests: the full Focus pipeline on simulated data."""

import numpy as np
import pytest

from repro.core.config import AssemblyConfig
from repro.core.focus import FocusAssembler, deduplicate_contigs
from repro.mpi.timing import CommCostModel
from repro.sequence.dna import decode, encode, reverse_complement
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


def simulate(genome_len=8000, coverage=12, seed=1, error=None):
    g = Genome("g", random_genome(genome_len, np.random.default_rng(seed)))
    cfg = ReadSimConfig(read_length=100, coverage=coverage, seed=seed, flat_error_rate=error)
    return g, ReadSimulator(cfg).simulate_genome(g)


@pytest.fixture(scope="module")
def assembled():
    genome, reads = simulate()
    assembler = FocusAssembler(AssemblyConfig(n_partitions=4), cost_model=FAST)
    return genome, reads, assembler.assemble(reads)


class TestDeduplicateContigs:
    def test_removes_exact_rc_mirror(self):
        a = encode("ACGTACGTACGTAATT")
        contigs = [a, reverse_complement(a)]
        assert len(deduplicate_contigs(contigs)) == 1

    def test_removes_contained(self):
        a = encode("ACGTACGTACGTAATT")
        assert len(deduplicate_contigs([a, a[2:10].copy()])) == 1

    def test_keeps_distinct(self):
        a = encode("ACGTACGTACGTAATT")
        b = encode("TTTTGGGGCCCCAAAA")
        assert len(deduplicate_contigs([a, b])) == 2

    def test_keeps_longest(self):
        a = encode("ACGTACGTACGTAATT")
        out = deduplicate_contigs([a[:8].copy(), a])
        assert len(out) == 1 and out[0].size == a.size


class TestFocusPipeline:
    def test_contigs_match_genome(self, assembled):
        # The simulator's quality-driven error model leaves rare errors
        # at low-coverage cluster edges, so require near-total (not
        # exact) k-mer agreement between contigs and the genome.
        from repro.sequence.kmers import kmer_codes

        genome, _, res = assembled
        k = 31
        ref = set(kmer_codes(genome.codes, k).tolist())
        ref |= set(kmer_codes(reverse_complement(genome.codes), k).tolist())
        for contig in res.contigs:
            vals = kmer_codes(contig, k)
            hit = sum(1 for v in vals.tolist() if v in ref)
            assert hit / max(len(vals), 1) > 0.95

    def test_most_bases_recovered(self, assembled):
        genome, _, res = assembled
        assert res.stats.max_contig >= 0.3 * len(genome)
        assert res.stats.total_bases >= 0.8 * len(genome)

    def test_stage_timings_present(self, assembled):
        _, _, res = assembled
        for stage in ("preprocess", "align", "coarsen", "hybrid", "partition", "traverse"):
            assert stage in res.timer.durations
        for stage in ("transitive", "containment", "dead_ends", "bubbles", "traversal"):
            assert stage in res.virtual_times

    def test_read_partitions_cover_reads(self, assembled):
        _, _, res = assembled
        parts = res.read_partitions
        assert parts.size == len(res.processed_reads)
        assert parts.min() >= 0 and parts.max() < 4

    def test_finish_reusable_across_k(self, assembled):
        genome, reads, _ = assembled
        assembler = FocusAssembler(AssemblyConfig(n_partitions=4), cost_model=FAST)
        prep = assembler.prepare(reads)
        r2 = assembler.finish(prep, n_partitions=2)
        r8 = assembler.finish(prep, n_partitions=8)
        # Table III's claim: stats are stable across partition counts.
        assert r2.stats.n50 > 0 and r8.stats.n50 > 0
        assert abs(r2.stats.n50 - r8.stats.n50) <= 0.2 * max(r2.stats.n50, r8.stats.n50)

    def test_finish_does_not_corrupt_prepared(self, assembled):
        _, reads, _ = assembled
        assembler = FocusAssembler(AssemblyConfig(n_partitions=2), cost_model=FAST)
        prep = assembler.prepare(reads)
        alive_before = prep.assembly.graph.n_nodes
        assembler.finish(prep)
        r2 = assembler.finish(prep)
        assert r2.dag.graph.n_nodes == alive_before
        assert r2.dag.node_alive.size == alive_before

    def test_multilevel_mode(self, assembled):
        _, reads, _ = assembled
        assembler = FocusAssembler(
            AssemblyConfig(n_partitions=2, partition_mode="multilevel"), cost_model=FAST
        )
        res = assembler.assemble(reads)
        assert res.stats.n_contigs > 0
        assert res.partition.labels_finest.size == res.hyb.hybrid.n_nodes

    def test_assembly_with_errors(self):
        genome, reads = simulate(genome_len=5000, coverage=15, seed=3, error=0.005)
        assembler = FocusAssembler(AssemblyConfig(n_partitions=2), cost_model=FAST)
        res = assembler.assemble(reads)
        # Errors should be consensus-corrected: contigs still align to genome.
        fwd = decode(genome.codes)
        big = max(res.contigs, key=lambda c: c.size)
        assert big.size > 500
        # Spot-check identity of the largest contig against the genome.
        found = fwd.find(decode(big[:50])) >= 0 or decode(
            reverse_complement(genome.codes)
        ).find(decode(big[:50])) >= 0
        assert found

    def test_empty_reads_rejected(self):
        from repro.io.readset import ReadSet

        assembler = FocusAssembler(AssemblyConfig(), cost_model=FAST)
        with pytest.raises(ValueError, match="no reads"):
            assembler.assemble(ReadSet.from_strings([]))

    def test_invalid_finish_args(self, assembled):
        _, reads, _ = assembled
        assembler = FocusAssembler(AssemblyConfig(), cost_model=FAST)
        prep = assembler.prepare(reads)
        with pytest.raises(ValueError):
            assembler.finish(prep, n_partitions=3)
        with pytest.raises(ValueError):
            assembler.finish(prep, partition_mode="magic")
