"""Tests for LPT / round-robin work-unit scheduling."""

import numpy as np
import pytest

from repro.align.overlapper import OverlapConfig, OverlapDetector, subset_pairs
from repro.mpi.cluster import SimCluster
from repro.mpi.timing import CommCostModel
from repro.parallel.schedule import (
    assignment_imbalance,
    lpt_assignment,
    round_robin_assignment,
    subset_pair_costs,
)
from tests.align.test_overlapper import tiled_reads

FAST = CommCostModel(alpha=1e-6, beta=1e-9)


class TestCosts:
    def test_self_pairs_halved(self):
        pairs = [(0, 0), (0, 1)]
        costs = subset_pair_costs(pairs, np.array([10, 20]))
        assert costs.tolist() == [50.0, 200.0]

    def test_standard_split(self):
        pairs = subset_pairs(4)
        costs = subset_pair_costs(pairs, np.array([8, 8, 8, 8]))
        # 4 self pairs at 32, 6 cross pairs at 64
        assert sorted(costs.tolist()) == [32.0] * 4 + [64.0] * 6


class TestLPT:
    def test_deterministic(self):
        costs = np.array([5.0, 1.0, 4.0, 2.0, 3.0, 3.0])
        a = lpt_assignment(costs, 3)
        b = lpt_assignment(costs, 3)
        assert a.tolist() == b.tolist()

    def test_largest_first_balances(self):
        # Classic LPT witness: round-robin puts both 5s on worker 0.
        costs = np.array([5.0, 1.0, 5.0, 1.0])
        lpt = lpt_assignment(costs, 2)
        rr = round_robin_assignment(4, 2)
        assert assignment_imbalance(costs, lpt, 2) < assignment_imbalance(costs, rr, 2)
        assert assignment_imbalance(costs, lpt, 2) == 1.0

    def test_all_tasks_assigned_valid_workers(self):
        costs = np.arange(1, 11, dtype=np.float64)
        owner = lpt_assignment(costs, 4)
        assert owner.shape == (10,)
        assert set(owner.tolist()) <= {0, 1, 2, 3}

    def test_single_worker(self):
        owner = lpt_assignment(np.array([3.0, 1.0]), 1)
        assert owner.tolist() == [0, 0]

    def test_empty(self):
        assert lpt_assignment(np.array([]), 4).size == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            lpt_assignment(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            lpt_assignment(np.array([-1.0]), 2)
        with pytest.raises(ValueError):
            round_robin_assignment(3, 0)

    def test_estimated_imbalance_beats_round_robin_on_standard_split(self):
        # The exact configuration of the overlap stage: 4 subsets, 10
        # pairs, 4 workers.  LPT is perfectly even; round-robin is not.
        pairs = subset_pairs(4)
        costs = subset_pair_costs(pairs, np.full(4, 100))
        lpt_imb = assignment_imbalance(costs, lpt_assignment(costs, 4), 4)
        rr_imb = assignment_imbalance(costs, round_robin_assignment(len(pairs), 4), 4)
        assert lpt_imb == 1.0
        assert rr_imb > 1.2


class TestClusterScheduleImbalance:
    def test_lpt_improves_compute_balance(self):
        # Virtual-time imbalance on the simulated cluster: LPT ownership
        # must spread per-rank compute at least as evenly as round-robin
        # striping (the gather/bcast at the end syncs the clocks, so the
        # measured per-rank compute times carry the signal).
        reads, _ = tiled_reads(genome_len=4000, stride=20)
        detector = OverlapDetector(OverlapConfig(min_overlap=50, n_subsets=4))

        def imbalance(schedule):
            results, stats = SimCluster(4, cost_model=FAST).run(
                detector.find_overlaps_parallel, reads, schedule=schedule
            )
            compute = np.array(stats.compute_times)
            return results[0], float(compute.max() / compute.mean())

        lpt_result, lpt_imb = imbalance("lpt")
        rr_result, rr_imb = imbalance("round_robin")
        key = lambda ovs: sorted((o.query, o.ref, o.length, o.identity) for o in ovs)
        assert key(lpt_result) == key(rr_result)
        # Estimated loads: LPT 1.0 vs round-robin 1.25 — allow measurement
        # noise but require a real improvement.
        assert lpt_imb < rr_imb

    def test_unknown_schedule_rejected(self):
        reads, _ = tiled_reads(genome_len=600)
        detector = OverlapDetector(OverlapConfig(min_overlap=50, n_subsets=2))
        with pytest.raises(RuntimeError, match="unknown schedule"):
            SimCluster(2, cost_model=FAST).run(
                detector.find_overlaps_parallel, reads, schedule="random"
            )
