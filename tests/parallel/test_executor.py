"""Tests for the ProcessPoolExecutor overlap driver."""

import numpy as np

from repro.align.overlapper import OverlapConfig, OverlapDetector
from repro.parallel.executor import ExecutorStats, run_subset_pairs
from tests.align.test_overlapper import tiled_reads


class TestRunSubsetPairs:
    def test_identical_to_serial(self):
        reads, _ = tiled_reads(genome_len=1200)
        config = OverlapConfig(min_overlap=50, n_subsets=4)
        serial = OverlapDetector(config).find_overlaps(reads)
        parallel, stats = run_subset_pairs(config, reads, n_workers=2)
        # Element-for-element identity, including list order.
        assert parallel == serial
        assert stats.n_workers == 2
        assert stats.n_tasks == 10
        assert stats.overlaps == len(serial)
        assert stats.candidates > 0

    def test_single_worker_short_circuits(self):
        reads, _ = tiled_reads(genome_len=600)
        config = OverlapConfig(min_overlap=50, n_subsets=2)
        overlaps, stats = run_subset_pairs(config, reads, n_workers=1)
        assert overlaps == OverlapDetector(config).find_overlaps(reads)
        assert isinstance(stats, ExecutorStats)
        assert stats.n_workers == 1

    def test_detector_facade(self):
        reads, _ = tiled_reads(genome_len=800)
        config = OverlapConfig(min_overlap=50, n_subsets=3)
        detector = OverlapDetector(config)
        serial = detector.find_overlaps(reads)
        serial_candidates = detector.last_candidates
        via_processes = detector.find_overlaps_processes(reads, n_workers=2)
        assert via_processes == serial
        assert detector.last_candidates == serial_candidates

    def test_candidate_counts_match_serial(self):
        reads, _ = tiled_reads(genome_len=1000)
        config = OverlapConfig(min_overlap=50, n_subsets=4)
        detector = OverlapDetector(config)
        detector.find_overlaps(reads)
        _, stats = run_subset_pairs(config, reads, n_workers=2)
        assert stats.candidates == detector.last_candidates

    def test_loop_engine_through_processes(self):
        reads, _ = tiled_reads(genome_len=600)
        vec = OverlapConfig(min_overlap=50, n_subsets=2)
        loop = OverlapConfig(min_overlap=50, n_subsets=2, engine="loop")
        a, _ = run_subset_pairs(vec, reads, n_workers=2)
        b, _ = run_subset_pairs(loop, reads, n_workers=2)
        assert a == b
