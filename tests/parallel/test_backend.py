"""Execution backends: serial/sim/process equivalence and plumbing."""

import numpy as np
import pytest

from repro.parallel.backend import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    StageOutcome,
    create_backend,
    partition_costs,
)
from tests.distributed.conftest import FAST, chain_assembly, dag_of

LABELS_6 = [0, 0, 0, 1, 1, 1]
STAGE_PARAMS = {
    "transitive": {"tolerance": 2},
    "containment": {"min_overlap": 50, "min_identity": 0.9},
    "dead_ends": {"max_tip_bases": 150},
    "bubbles": {},
    "traversal": {},
}


def fresh_dag():
    assembly, _ = chain_assembly(n=6)
    return dag_of(assembly, LABELS_6)


def run_all_stages(engine):
    """Run the full cleaning sequence; returns (paths, outcomes)."""
    outcomes = {}
    for stage, params in STAGE_PARAMS.items():
        outcomes[stage] = engine.run_stage(stage, **params)
    return outcomes["traversal"].result, outcomes


class TestSerialBackend:
    def test_outcome_shape(self):
        engine = SerialBackend(fresh_dag())
        out = engine.run_stage("transitive", tolerance=2)
        assert isinstance(out, StageOutcome)
        assert out.stage == "transitive"
        assert out.time_kind == "wall"
        assert out.elapsed >= 0.0

    def test_context_manager(self):
        with SerialBackend(fresh_dag()) as engine:
            assert engine.run_stage("traversal").result


class TestPartitionCosts:
    def test_counts_alive_nodes_per_partition(self):
        dag = fresh_dag()
        assert partition_costs(dag).tolist() == [3.0, 3.0]
        dag.node_alive[0] = False
        assert partition_costs(dag).tolist() == [2.0, 3.0]


class TestCreateBackend:
    def test_names(self):
        assert BACKEND_NAMES == ("serial", "sim", "process")

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_creates_each(self, name):
        engine = create_backend(name, fresh_dag(), cost_model=FAST)
        try:
            assert engine.name == name
            assert engine.time_kind == ("virtual" if name == "sim" else "wall")
        finally:
            engine.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("threads", fresh_dag())


class TestProcessBackend:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ProcessBackend(fresh_dag(), workers=-1)

    def test_single_partition_falls_back_to_serial(self):
        assembly, _ = chain_assembly(n=4)
        dag = dag_of(assembly, [0, 0, 0, 0])
        engine = ProcessBackend(dag, workers=4)
        try:
            out = engine.run_stage("traversal")
            assert out.result  # ran fine without ever building a pool
            assert engine._pool is None
        finally:
            engine.close()

    def test_real_pool_matches_serial(self):
        # workers=2 forces a genuine pool even on single-core hosts.
        serial_dag, process_dag = fresh_dag(), fresh_dag()
        serial_paths, _ = run_all_stages(SerialBackend(serial_dag))
        with ProcessBackend(process_dag, workers=2) as engine:
            process_paths, outcomes = run_all_stages(engine)
            assert engine._pool is not None  # the pool really ran
        assert process_paths == serial_paths
        assert (process_dag.node_alive == serial_dag.node_alive).all()
        assert (process_dag.edge_alive == serial_dag.edge_alive).all()
        assert all(o.time_kind == "wall" for o in outcomes.values())


class TestBackendEquivalenceSmall:
    def test_all_backends_identical_masks_and_paths(self):
        results = {}
        for name in BACKEND_NAMES:
            dag = fresh_dag()
            engine = create_backend(name, dag, workers=2, cost_model=FAST)
            try:
                paths, _ = run_all_stages(engine)
            finally:
                engine.close()
            results[name] = (paths, dag.node_alive.copy(), dag.edge_alive.copy())
        base_paths, base_nodes, base_edges = results["serial"]
        for name in ("sim", "process"):
            paths, nodes, edges = results[name]
            assert paths == base_paths, name
            assert (nodes == base_nodes).all(), name
            assert (edges == base_edges).all(), name

    def test_sim_backend_reports_virtual_time(self):
        dag = fresh_dag()
        engine = create_backend("sim", dag, cost_model=FAST)
        try:
            out = engine.run_stage("transitive", tolerance=2)
        finally:
            engine.close()
        assert out.time_kind == "virtual"
        assert out.elapsed > 0.0
