"""Unit tests for the OverlapGraph structure."""

import numpy as np
import pytest

from repro.align.overlap import Overlap, OverlapKind
from repro.graph.overlap_graph import OverlapGraph


def simple_graph():
    # path 0-1-2 with weights 10, 20, deltas +40, +40
    return OverlapGraph(
        3,
        np.array([0, 1]),
        np.array([1, 2]),
        np.array([10.0, 20.0]),
        deltas=np.array([40, 40]),
    )


class TestConstruction:
    def test_basic_counts(self):
        g = simple_graph()
        assert g.n_nodes == 3
        assert g.n_edges == 2
        assert g.total_edge_weight == 30.0
        assert g.total_node_weight == 3

    def test_orientation_normalised(self):
        g = OverlapGraph(2, np.array([1]), np.array([0]), np.array([5.0]), deltas=np.array([7]))
        assert g.eu[0] == 0 and g.ev[0] == 1
        assert g.deltas[0] == -7  # flipped with the orientation

    def test_parallel_edges_merged(self):
        g = OverlapGraph(
            2,
            np.array([0, 1]),
            np.array([1, 0]),
            np.array([5.0, 7.0]),
            deltas=np.array([3, -3]),
            identities=np.array([0.9, 0.95]),
        )
        assert g.n_edges == 1
        assert g.weights[0] == 12.0
        assert g.identities[0] == 0.95
        assert g.deltas[0] == 3  # heaviest instance (weight 7, flipped to (0,1) delta 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            OverlapGraph(2, np.array([0]), np.array([0]), np.array([1.0]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            OverlapGraph(2, np.array([0]), np.array([9]), np.array([1.0]))

    def test_node_weight_mismatch(self):
        with pytest.raises(ValueError):
            OverlapGraph(3, np.array([0]), np.array([1]), np.array([1.0]), node_weights=np.array([1]))

    def test_empty_graph(self):
        g = OverlapGraph(5, np.array([]), np.array([]), np.array([]))
        assert g.n_edges == 0
        assert g.degrees.tolist() == [0] * 5


class TestQueries:
    def test_neighbors(self):
        g = simple_graph()
        assert set(g.neighbors(1).tolist()) == {0, 2}
        assert g.neighbors(0).tolist() == [1]

    def test_degrees(self):
        assert simple_graph().degrees.tolist() == [1, 2, 1]

    def test_edge_delta_directional(self):
        g = simple_graph()
        e01 = int(g.incident_edges(0)[0])
        assert g.edge_delta(e01, 0) == 40
        assert g.edge_delta(e01, 1) == -40

    def test_edge_delta_requires_endpoint(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            g.edge_delta(0, 2)

    def test_edge_delta_requires_deltas(self):
        g = OverlapGraph(2, np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(ValueError, match="no layout deltas"):
            g.edge_delta(0, 0)

    def test_other_endpoint(self):
        g = simple_graph()
        assert g.other_endpoint(0, 0) == 1
        assert g.other_endpoint(0, 1) == 0
        with pytest.raises(ValueError):
            g.other_endpoint(0, 2)


class TestFromOverlaps:
    def test_from_overlaps(self):
        ovs = [
            Overlap(0, 1, 30, 0, 70, 0.95, OverlapKind.QUERY_LEFT),
            Overlap(1, 2, 30, 0, 70, 1.0, OverlapKind.QUERY_LEFT),
        ]
        g = OverlapGraph.from_overlaps(ovs, 3)
        assert g.n_edges == 2
        assert g.weights.tolist() == [70.0, 70.0]
        e01 = int(g.incident_edges(0)[0])
        assert g.edge_delta(e01, 0) == 30  # read1 sits 30bp right of read0

    def test_empty_overlaps(self):
        g = OverlapGraph.from_overlaps([], 4)
        assert g.n_edges == 0


class TestDerivation:
    def test_drop_edges(self):
        g = simple_graph()
        g2 = g.drop_edges(np.array([True, False]))
        assert g2.n_edges == 1
        assert g2.n_nodes == 3
        assert g2.weights.tolist() == [20.0]

    def test_drop_edges_bad_mask(self):
        with pytest.raises(ValueError):
            simple_graph().drop_edges(np.array([True]))

    def test_drop_nodes(self):
        g = simple_graph()
        g2, remap = g.drop_nodes(np.array([False, False, True]))
        assert g2.n_nodes == 2
        assert g2.n_edges == 1
        assert remap.tolist() == [0, 1, -1]

    def test_drop_nodes_removes_incident_edges(self):
        g = simple_graph()
        g2, _ = g.drop_nodes(np.array([False, True, False]))
        assert g2.n_edges == 0

    def test_to_networkx(self):
        nxg = simple_graph().to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.edges[0, 1]["weight"] == 10.0
