"""Tests for connected components and graph diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import (
    component_sizes,
    connected_components,
    summarize_graph,
)
from repro.graph.overlap_graph import OverlapGraph


def graph_of(n, edges):
    if edges:
        eu = np.array([a for a, _ in edges])
        ev = np.array([b for _, b in edges])
    else:
        eu = ev = np.array([])
    return OverlapGraph(n, eu, ev, np.ones(len(edges)))


class TestConnectedComponents:
    def test_two_components(self):
        g = graph_of(5, [(0, 1), (1, 2), (3, 4)])
        labels = connected_components(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_isolated_nodes(self):
        g = graph_of(4, [(0, 1)])
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 3

    def test_empty_graph(self):
        g = graph_of(0, [])
        assert connected_components(g).size == 0

    def test_single_component_ring(self):
        g = graph_of(6, [(i, (i + 1) % 6) for i in range(6)])
        assert len(set(connected_components(g).tolist())) == 1

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=500))
    def test_matches_networkx(self, n, seed):
        rng = np.random.default_rng(seed)
        edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < 0.1]
        g = graph_of(n, edges)
        labels = connected_components(g)
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(edges)
        expect = list(nx.connected_components(nxg))
        assert len(set(labels.tolist())) == len(expect)
        for comp in expect:
            comp = list(comp)
            assert len({labels[c] for c in comp}) == 1


class TestSummary:
    def test_component_sizes_sorted(self):
        g = graph_of(6, [(0, 1), (1, 2), (3, 4)])
        assert component_sizes(g).tolist() == [3, 2, 1]

    def test_summary_fields(self):
        g = graph_of(5, [(0, 1), (1, 2), (3, 4)])
        s = summarize_graph(g)
        assert s.n_nodes == 5
        assert s.n_edges == 3
        assert s.n_components == 2
        assert s.largest_component == 3
        assert s.n_isolated == 0
        assert s.max_degree == 2
        assert s.mean_degree == pytest.approx(6 / 5)

    def test_summary_empty(self):
        s = summarize_graph(graph_of(0, []))
        assert s.n_nodes == 0 and s.mean_degree == 0.0

    def test_report_string(self):
        s = summarize_graph(graph_of(3, [(0, 1)]))
        text = s.report()
        assert "nodes 3" in text and "components 2" in text
