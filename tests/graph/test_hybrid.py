"""Unit + integration tests for the hybrid graph set."""

import numpy as np
import pytest

from repro.graph.coarsen import CoarsenConfig, build_multilevel_set
from repro.graph.hybrid import build_hybrid_set, is_contiguous_cluster
from repro.graph.overlap_graph import OverlapGraph
from tests.graph.conftest import graph_from_reads, tiled_readset


@pytest.fixture
def tiled_mls():
    reads, genome = tiled_readset(genome_len=2000, stride=25, seed=1)
    g0 = graph_from_reads(reads)
    mls = build_multilevel_set(g0, CoarsenConfig(min_nodes=4, seed=1))
    return reads, g0, mls


class TestIsContiguousCluster:
    def test_singleton_always(self):
        g = OverlapGraph(1, np.array([]), np.array([]), np.array([]), deltas=np.array([], dtype=np.int64))
        assert is_contiguous_cluster(g, np.array([0]), np.array([100]))

    def test_linear_cluster(self, tiled_mls):
        reads, g0, _ = tiled_mls
        nodes = np.arange(5)
        assert is_contiguous_cluster(g0, nodes, reads.lengths)

    def test_disconnected_cluster(self, tiled_mls):
        reads, g0, _ = tiled_mls
        nodes = np.array([0, len(reads) - 1])
        assert not is_contiguous_cluster(g0, nodes, reads.lengths)

    def test_conflicting_cluster(self):
        g = OverlapGraph(
            3,
            np.array([0, 1, 0]),
            np.array([1, 2, 2]),
            np.array([60.0, 60.0, 60.0]),
            deltas=np.array([10, 10, 90]),
        )
        assert not is_contiguous_cluster(g, np.array([0, 1, 2]), np.array([100, 100, 100]))


class TestBuildHybridSet:
    def test_levels_match_multilevel(self, tiled_mls):
        reads, g0, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        assert hyb.n_levels == mls.n_levels

    def test_hybrid_no_bigger_than_g0(self, tiled_mls):
        reads, g0, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        assert hyb.hybrid.n_nodes <= g0.n_nodes
        # Linear data coarsens well: hybrid graph should be much smaller.
        assert hyb.hybrid.n_nodes < g0.n_nodes / 2

    def test_coarsest_hybrid_equals_coarsest_multilevel(self, tiled_mls):
        reads, _, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        assert hyb.graphs[-1].n_nodes == mls.coarsest.n_nodes

    def test_node_weight_conserved(self, tiled_mls):
        reads, g0, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        for g in hyb.graphs:
            assert g.total_node_weight == g0.total_node_weight

    def test_base_maps_cover(self, tiled_mls):
        reads, g0, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        for i, g in enumerate(hyb.graphs):
            bm = hyb.base_maps[i]
            assert bm.size == g0.n_nodes
            assert set(bm.tolist()) == set(range(g.n_nodes))

    def test_mappings_compose_with_base_maps(self, tiled_mls):
        reads, _, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        for i in range(hyb.n_levels - 1):
            assert (hyb.mappings[i][hyb.base_maps[i]] == hyb.base_maps[i + 1]).all()

    def test_rep_levels_assigned(self, tiled_mls):
        reads, _, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        assert (hyb.rep_level >= 0).all()
        assert (hyb.rep_level <= mls.n_levels - 1).all()

    def test_clusters_of_hybrid_partition_reads(self, tiled_mls):
        reads, _, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        clusters = hyb.clusters_of_hybrid()
        allnodes = np.concatenate([c for c in clusters if c.size])
        assert sorted(allnodes.tolist()) == list(range(len(reads)))

    def test_every_hybrid_cluster_is_contiguous(self, tiled_mls):
        reads, g0, mls = tiled_mls
        hyb = build_hybrid_set(mls, reads.lengths)
        for cluster in hyb.clusters_of_hybrid():
            assert is_contiguous_cluster(g0, cluster, reads.lengths)

    def test_trivial_multilevel(self):
        # a graph too small to coarsen: hybrid == multilevel == single level
        g = OverlapGraph(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([60.0, 60.0]),
            deltas=np.array([10, 10]),
        )
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=10, seed=0))
        hyb = build_hybrid_set(mls, np.array([100, 100, 100]))
        assert hyb.n_levels == 1
        assert hyb.hybrid.n_nodes == 3

    def test_wrong_lengths_rejected(self, tiled_mls):
        reads, _, mls = tiled_mls
        with pytest.raises(ValueError):
            build_hybrid_set(mls, np.array([100]))
