"""Tests for quality-weighted consensus."""

import numpy as np

from repro.graph.contigs import consensus_from_layout
from repro.io.records import Read
from repro.io.readset import ReadSet
from repro.sequence.dna import decode


def stacked_reads(seqs, quals_list):
    reads = [
        Read.from_string(f"r{i}", s, quals=np.array(q))
        for i, (s, q) in enumerate(zip(seqs, quals_list))
    ]
    return ReadSet(reads)


class TestQualityWeightedConsensus:
    def test_tie_broken_by_quality(self):
        # two reads disagree at position 2: confident C vs junk A
        rs = stacked_reads(
            ["AACAA", "AAAAA"],
            [[40, 40, 40, 40, 40], [40, 40, 2, 40, 40]],
        )
        zero = np.zeros(2, dtype=np.int64)
        weighted = consensus_from_layout(rs, np.arange(2), zero, quality_weighted=True)
        assert decode(weighted[0]) == "AACAA"

    def test_majority_still_wins_against_one_confident_error(self):
        rs = stacked_reads(
            ["AAAAA", "AAAAA", "AACAA"],
            [[30] * 5, [30] * 5, [41] * 5],
        )
        out = consensus_from_layout(rs, np.arange(3), np.zeros(3, dtype=np.int64),
                                    quality_weighted=True)
        assert decode(out[0]) == "AAAAA"

    def test_unweighted_default_unchanged(self):
        rs = stacked_reads(
            ["AACAA", "AAAAA"],
            [[40] * 5, [40, 40, 2, 40, 40]],
        )
        out = consensus_from_layout(rs, np.arange(2), np.zeros(2, dtype=np.int64))
        # unweighted tie: argmax picks the smaller code (A=0 beats C=1)
        assert decode(out[0]) == "AAAAA"

    def test_no_quals_falls_back(self):
        rs = ReadSet.from_strings(["ACGT", "ACGT"])
        out = consensus_from_layout(rs, np.arange(2), np.zeros(2, dtype=np.int64),
                                    quality_weighted=True)
        assert decode(out[0]) == "ACGT"

    def test_weighted_matches_unweighted_on_agreement(self):
        rs = stacked_reads(["ACGTACGT"] * 3, [[35] * 8] * 3)
        a = consensus_from_layout(rs, np.arange(3), np.zeros(3, dtype=np.int64))
        b = consensus_from_layout(rs, np.arange(3), np.zeros(3, dtype=np.int64),
                                  quality_weighted=True)
        assert decode(a[0]) == decode(b[0]) == "ACGTACGT"
