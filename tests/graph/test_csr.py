"""Unit tests for CSR construction."""

import numpy as np
import pytest

from repro.graph.csr import build_csr


class TestBuildCsr:
    def test_simple_triangle(self):
        indptr, adj, eids = build_csr(3, np.array([0, 1, 0]), np.array([1, 2, 2]))
        assert indptr.tolist() == [0, 2, 4, 6]
        assert set(adj[0:2].tolist()) == {1, 2}
        assert set(adj[2:4].tolist()) == {0, 2}

    def test_edge_ids_symmetric(self):
        indptr, adj, eids = build_csr(2, np.array([0]), np.array([1]))
        assert eids.tolist() == [0, 0]

    def test_isolated_nodes(self):
        indptr, adj, _ = build_csr(4, np.array([1]), np.array([2]))
        assert indptr.tolist() == [0, 0, 1, 2, 2]

    def test_empty_graph(self):
        indptr, adj, _ = build_csr(3, np.array([]), np.array([]))
        assert indptr.tolist() == [0, 0, 0, 0]
        assert adj.size == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_csr(2, np.array([0]), np.array([5]))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            build_csr(2, np.array([1]), np.array([1]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            build_csr(3, np.array([0, 1]), np.array([1]))
