"""Unit tests for CSR construction."""

import numpy as np
import pytest

from repro.graph.csr import build_csr


class TestBuildCsr:
    def test_simple_triangle(self):
        indptr, adj, eids = build_csr(3, np.array([0, 1, 0]), np.array([1, 2, 2]))
        assert indptr.tolist() == [0, 2, 4, 6]
        assert set(adj[0:2].tolist()) == {1, 2}
        assert set(adj[2:4].tolist()) == {0, 2}

    def test_edge_ids_symmetric(self):
        indptr, adj, eids = build_csr(2, np.array([0]), np.array([1]))
        assert eids.tolist() == [0, 0]

    def test_isolated_nodes(self):
        indptr, adj, _ = build_csr(4, np.array([1]), np.array([2]))
        assert indptr.tolist() == [0, 0, 1, 2, 2]

    def test_empty_graph(self):
        indptr, adj, _ = build_csr(3, np.array([]), np.array([]))
        assert indptr.tolist() == [0, 0, 0, 0]
        assert adj.size == 0

    def test_empty_graph_arrays_are_typed(self):
        # Downstream vectorized consumers (repro.graph.sparse) index
        # with these arrays, so the edgeless path must return int64
        # like the populated path — not float64 from np.array([]).
        indptr, adj, eids = build_csr(3, np.array([]), np.array([]))
        assert indptr.dtype == np.int64
        assert adj.dtype == np.int64
        assert eids.dtype == np.int64

    def test_zero_node_graph(self):
        indptr, adj, eids = build_csr(0, np.array([]), np.array([]))
        assert indptr.tolist() == [0]
        assert indptr.dtype == np.int64
        assert adj.size == 0 and eids.size == 0

    def test_populated_graph_arrays_are_typed(self):
        indptr, adj, eids = build_csr(3, np.array([0, 1]), np.array([1, 2]))
        assert indptr.dtype == np.int64
        assert adj.dtype == np.int64
        assert eids.dtype == np.int64

    def test_isolated_nodes_slices_are_empty_and_indexable(self):
        indptr, adj, eids = build_csr(5, np.array([0]), np.array([4]))
        for v in (1, 2, 3):
            sl = adj[indptr[v] : indptr[v + 1]]
            assert sl.size == 0
            assert sl.dtype == np.int64

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_csr(2, np.array([0]), np.array([5]))

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            build_csr(2, np.array([1]), np.array([1]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            build_csr(3, np.array([0, 1]), np.array([1]))
