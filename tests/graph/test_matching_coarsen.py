"""Unit + property tests for heavy edge matching and coarsening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.coarsen import (
    CoarsenConfig,
    MultilevelGraphSet,
    build_multilevel_set,
    coarsen_once,
)
from repro.graph.matching import heavy_edge_matching
from repro.graph.overlap_graph import OverlapGraph


def path_graph(n, weights=None):
    eu = np.arange(n - 1)
    ev = eu + 1
    w = np.ones(n - 1) if weights is None else np.asarray(weights, dtype=np.float64)
    return OverlapGraph(n, eu, ev, w)


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p]
    if not pairs:
        pairs = [(0, 1)] if n >= 2 else []
    eu = np.array([a for a, _ in pairs])
    ev = np.array([b for _, b in pairs])
    w = rng.integers(1, 100, size=len(pairs)).astype(np.float64)
    return OverlapGraph(n, eu, ev, w)


class TestHeavyEdgeMatching:
    def test_involution(self):
        g = random_graph(30, 0.2, seed=0)
        match = heavy_edge_matching(g, np.random.default_rng(0))
        assert (match[match] == np.arange(30)).all()

    def test_matched_pairs_are_neighbors(self):
        g = random_graph(30, 0.2, seed=1)
        match = heavy_edge_matching(g, np.random.default_rng(1))
        for v in range(30):
            if match[v] != v:
                assert match[v] in g.neighbors(v)

    def test_isolated_nodes_self_matched(self):
        g = OverlapGraph(4, np.array([0]), np.array([1]), np.array([1.0]))
        match = heavy_edge_matching(g, np.random.default_rng(0))
        assert match[2] == 2 and match[3] == 3

    def test_prefers_heavy_edge(self):
        # star: center 0 with edges to 1 (w=1), 2 (w=100)
        g = OverlapGraph(3, np.array([0, 0]), np.array([1, 2]), np.array([1.0, 100.0]))
        for seed in range(5):
            match = heavy_edge_matching(g, np.random.default_rng(seed))
            if match[0] != 0:
                assert match[0] == 2

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=100))
    def test_involution_property(self, n, seed):
        g = random_graph(n, 0.3, seed)
        match = heavy_edge_matching(g, np.random.default_rng(seed))
        assert (match[match] == np.arange(n)).all()


class TestCoarsenOnce:
    def test_node_weight_conserved(self):
        g = random_graph(40, 0.15, seed=2)
        coarse, mapping = coarsen_once(g, np.random.default_rng(2))
        assert coarse.total_node_weight == g.total_node_weight

    def test_mapping_covers(self):
        g = random_graph(40, 0.15, seed=3)
        coarse, mapping = coarsen_once(g, np.random.default_rng(3))
        assert mapping.size == g.n_nodes
        assert set(mapping.tolist()) == set(range(coarse.n_nodes))

    def test_shrinks(self):
        g = path_graph(20)
        coarse, _ = coarsen_once(g, np.random.default_rng(0))
        assert coarse.n_nodes < 20

    def test_edge_weight_partitioned(self):
        # weight hidden inside merged pairs + weight of coarse edges == total
        g = random_graph(40, 0.2, seed=4)
        coarse, mapping = coarsen_once(g, np.random.default_rng(4))
        crossing = coarse.total_edge_weight
        hidden = sum(
            g.weights[i] for i in range(g.n_edges) if mapping[g.eu[i]] == mapping[g.ev[i]]
        )
        assert crossing + hidden == pytest.approx(g.total_edge_weight)


class TestMultilevelSet:
    def test_monotone_sizes(self):
        g = random_graph(200, 0.05, seed=5)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=10, seed=5))
        sizes = [gr.n_nodes for gr in mls.graphs]
        assert sizes == sorted(sizes, reverse=True)
        assert mls.n_levels >= 2

    def test_stops_at_min_nodes(self):
        g = path_graph(100)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=80, seed=0))
        # G0 has 100 > 80 -> one step allowed; G1 <= ~50, stop.
        assert mls.n_levels == 2

    def test_map_to_level_identity_at_zero(self):
        g = path_graph(30)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=4, seed=0))
        assert (mls.map_to_level(0) == np.arange(30)).all()

    def test_map_to_level_composes(self):
        g = random_graph(100, 0.08, seed=6)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=8, seed=6))
        top = mls.n_levels - 1
        comp = mls.map_to_level(top)
        manual = np.arange(g.n_nodes)
        for m in mls.mappings:
            manual = m[manual]
        assert (comp == manual).all()

    def test_clusters_partition_base(self):
        g = random_graph(80, 0.1, seed=7)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=8, seed=7))
        for level in range(mls.n_levels):
            clusters = mls.clusters_at_level(level)
            allnodes = np.concatenate([c for c in clusters if c.size])
            assert sorted(allnodes.tolist()) == list(range(80))

    def test_node_weight_conserved_through_levels(self):
        g = random_graph(120, 0.08, seed=8)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=8, seed=8))
        for gr in mls.graphs:
            assert gr.total_node_weight == 120

    def test_bad_config(self):
        with pytest.raises(ValueError):
            CoarsenConfig(min_nodes=0)
        with pytest.raises(ValueError):
            CoarsenConfig(min_reduction=0.0)
        with pytest.raises(ValueError):
            CoarsenConfig(max_levels=0)

    def test_mls_validation(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            MultilevelGraphSet([g], [np.zeros(4, dtype=np.int64)])

    def test_level_out_of_range(self):
        g = path_graph(10)
        mls = build_multilevel_set(g, CoarsenConfig(min_nodes=2, seed=0))
        with pytest.raises(ValueError):
            mls.map_to_level(99)
