"""Unit + integration tests for cluster layout and consensus."""

import numpy as np
import pytest

from repro.graph.contigs import (
    cluster_layout_offsets,
    consensus_from_layout,
    contig_for_nodes,
    is_layout_contiguous,
)
from repro.graph.overlap_graph import OverlapGraph
from repro.sequence.dna import decode
from tests.graph.conftest import graph_from_reads, tiled_readset


class TestClusterLayout:
    def test_tiled_layout_recovers_positions(self, tiled):
        reads, genome, g0 = tiled
        nodes = np.arange(len(reads))
        offsets = cluster_layout_offsets(g0, nodes)
        assert offsets is not None
        # True positions are 0, 40, 80, ...; offsets normalised to min 0.
        assert offsets.tolist() == [40 * i for i in range(len(reads))]

    def test_disconnected_returns_none(self, tiled):
        reads, _, g0 = tiled
        # first and last read do not overlap
        assert cluster_layout_offsets(g0, np.array([0, len(reads) - 1])) is None

    def test_singleton(self, tiled):
        _, _, g0 = tiled
        offsets = cluster_layout_offsets(g0, np.array([3]))
        assert offsets.tolist() == [0]

    def test_conflicting_deltas_return_none(self):
        # triangle with inconsistent deltas: 0->1 +10, 1->2 +10, 0->2 +50
        g = OverlapGraph(
            3,
            np.array([0, 1, 0]),
            np.array([1, 2, 2]),
            np.array([60.0, 60.0, 60.0]),
            deltas=np.array([10, 10, 50]),
        )
        assert cluster_layout_offsets(g, np.array([0, 1, 2])) is None

    def test_tolerance_allows_slack(self):
        g = OverlapGraph(
            3,
            np.array([0, 1, 0]),
            np.array([1, 2, 2]),
            np.array([60.0, 60.0, 60.0]),
            deltas=np.array([10, 10, 22]),
        )
        assert cluster_layout_offsets(g, np.array([0, 1, 2])) is None
        assert cluster_layout_offsets(g, np.array([0, 1, 2]), tolerance=2) is not None

    def test_requires_deltas(self):
        g = OverlapGraph(2, np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(ValueError):
            cluster_layout_offsets(g, np.array([0, 1]))

    def test_empty_cluster_rejected(self, tiled):
        _, _, g0 = tiled
        with pytest.raises(ValueError):
            cluster_layout_offsets(g0, np.array([], dtype=np.int64))


class TestIsLayoutContiguous:
    def test_contiguous(self):
        assert is_layout_contiguous(np.array([0, 40, 80]), np.array([100, 100, 100]))

    def test_gap(self):
        assert not is_layout_contiguous(np.array([0, 200]), np.array([100, 100]))

    def test_touching_counts(self):
        assert is_layout_contiguous(np.array([0, 100]), np.array([100, 100]))

    def test_unsorted_input(self):
        assert is_layout_contiguous(np.array([80, 0, 40]), np.array([100, 100, 100]))

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            is_layout_contiguous(np.array([0]), np.array([1, 2]))


class TestConsensus:
    def test_reconstructs_genome(self, tiled):
        reads, genome, g0 = tiled
        nodes = np.arange(len(reads))
        segments = contig_for_nodes(reads, g0, nodes)
        assert segments is not None
        assert len(segments) == 1
        # Tiles cover genome[0 : last_start + 100]
        covered = genome[: 40 * (len(reads) - 1) + 100]
        assert decode(segments[0]) == decode(covered)

    def test_majority_vote_fixes_errors(self):
        # Three identical reads stacked; one has an error at position 5.
        from repro.io.readset import ReadSet

        base = "ACGTACGTACGTACGTACGT"
        noisy = base[:5] + ("A" if base[5] != "A" else "C") + base[6:]
        reads = ReadSet.from_strings([base, base, noisy])
        g = OverlapGraph(
            3,
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([20.0, 20.0]),
            deltas=np.array([0, 0]),
        )
        segs = contig_for_nodes(reads, g, np.array([0, 1, 2]))
        assert decode(segs[0]) == base

    def test_gap_splits_segments(self):
        from repro.io.readset import ReadSet

        reads = ReadSet.from_strings(["AAAA", "TTTT"])
        segs = consensus_from_layout(reads, np.array([0, 1]), np.array([0, 10]))
        assert len(segs) == 2
        assert decode(segs[0]) == "AAAA"
        assert decode(segs[1]) == "TTTT"

    def test_empty_nodes(self):
        from repro.io.readset import ReadSet

        assert consensus_from_layout(ReadSet.from_strings([]), np.array([], dtype=int), np.array([], dtype=int)) == []

    def test_layout_failure_propagates(self):
        from repro.io.readset import ReadSet

        reads = ReadSet.from_strings(["AAAA", "TTTT"])
        g = OverlapGraph(2, np.array([]), np.array([]), np.array([]), deltas=np.array([], dtype=np.int64))
        assert contig_for_nodes(reads, g, np.array([0, 1])) is None
