"""Shared fixtures for graph tests: tiled-read datasets and their G0."""

import numpy as np
import pytest

from repro.align.overlapper import OverlapConfig, OverlapDetector
from repro.graph.overlap_graph import OverlapGraph
from repro.io.readset import ReadSet
from repro.sequence.dna import decode
from repro.simulate.genome import random_genome


def tiled_readset(genome_len=800, read_len=100, stride=40, seed=0, genome=None):
    g = random_genome(genome_len, np.random.default_rng(seed)) if genome is None else genome
    seqs = [decode(g[s : s + read_len]) for s in range(0, len(g) - read_len + 1, stride)]
    return ReadSet.from_strings(seqs), g


def graph_from_reads(reads, min_overlap=50):
    det = OverlapDetector(OverlapConfig(min_overlap=min_overlap))
    return OverlapGraph.from_overlaps(det.find_overlaps(reads), len(reads))


@pytest.fixture
def tiled():
    reads, genome = tiled_readset()
    return reads, genome, graph_from_reads(reads)
