#!/usr/bin/env python
"""Variant detection on the distributed hybrid graph.

The paper names variant detection as the natural next algorithm for
its framework (§VI-D).  This example simulates a sample carrying a
*hypervariable locus*: two alleles of the same genome that are
identical everywhere except a short, strongly divergent window (as in
antigenic-variation or HLA-like regions; ~30% divergence).  Reads from the two alleles
fail the 90%-identity overlap threshold inside the window, so the
hybrid graph grows a bubble there — and the distributed variant caller
reads the differences back out of the bubble's branch contigs.

(Isolated heterozygous SNVs do *not* bubble an overlap graph: at 99%+
identity the haplotypes still overlap and the consensus absorbs them —
a real and known property of the model.)

Run:  python examples/variant_detection.py
"""

import numpy as np

from repro import AssemblyConfig, FocusAssembler
from repro.distributed.variants import detect_variants
from repro.io.readset import ReadSet
from repro.mpi.cluster import SimCluster
from repro.simulate.genome import Genome, mutate, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator

N_PARTITIONS = 4
WINDOW = (5_000, 5_400)  # divergent locus
DIVERGENCE = 0.30


def main() -> None:
    rng = np.random.default_rng(99)
    allele_a = random_genome(12_000, rng)
    allele_b = allele_a.copy()
    lo, hi = WINDOW
    allele_b[lo:hi] = mutate(allele_a[lo:hi], DIVERGENCE, rng)
    n_diffs = int((allele_a != allele_b).sum())
    print(f"planted a divergent locus [{lo}, {hi}) with {n_diffs} differing bases")

    sim = ReadSimulator(ReadSimConfig(read_length=100, coverage=12, seed=99))
    reads_a = sim.simulate_genome(Genome("alleleA", allele_a))
    reads_b = sim.simulate_genome(Genome("alleleB", allele_b), id_prefix="alleleB")
    pooled = ReadSet(list(reads_a) + list(reads_b))
    print(f"pooled {len(pooled):,} reads from the two alleles")

    # Trimming stays off: error removal would pop the very bubbles the
    # variant caller needs.
    assembler = FocusAssembler(AssemblyConfig(n_partitions=N_PARTITIONS, run_trimming=False))
    result = assembler.assemble(pooled)
    print(f"assembly: {result.stats.n_contigs} contigs, N50 {result.stats.n50:,} bp")

    cluster = SimCluster(N_PARTITIONS)
    results, stats = cluster.run(
        detect_variants, result.dag, max_variants_per_bubble=300
    )
    calls = results[0]
    snvs = [v for v in calls if v.kind == "snv"]
    print(f"\ndetected {len(calls)} candidate variant records "
          f"({len(snvs)} SNVs) in {stats.elapsed * 1e3:.2f} virtual ms")
    for v in calls[:10]:
        print(f"  {v.kind.upper():>5} branch {v.ref_node}->{v.alt_node} "
              f"offset {v.position}: {v.ref_allele} -> {v.alt_allele}")
    if len(calls) > 10:
        print(f"  ... and {len(calls) - 10} more")
    if calls:
        print("\n=> the divergent locus surfaced as a hybrid-graph bubble and "
              "its alleles were recovered from the branch contigs")


if __name__ == "__main__":
    main()
