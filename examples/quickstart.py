#!/usr/bin/env python
"""Quickstart: assemble a simulated bacterial genome with Focus.

Simulates a 25 kb genome, shotgun-samples Illumina-like 100 bp reads at
12x coverage, runs the full Focus pipeline (overlap graph -> multilevel
coarsening -> hybrid graph -> 4-way partitioning -> distributed
trimming/traversal on the simulated cluster), and reports assembly
statistics plus a correctness check against the known genome.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AssemblyConfig, FocusAssembler
from repro.sequence.dna import decode, reverse_complement
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def main() -> None:
    rng = np.random.default_rng(42)
    genome = Genome("toy_genome", random_genome(25_000, rng))
    print(f"genome: {genome.name}, {len(genome):,} bp")

    simulator = ReadSimulator(ReadSimConfig(read_length=100, coverage=12, seed=42))
    reads = simulator.simulate_genome(genome)
    print(f"simulated {len(reads):,} reads ({reads.total_bases:,} bases)")

    assembler = FocusAssembler(AssemblyConfig(n_partitions=4))
    result = assembler.assemble(reads)

    print("\n-- pipeline stage timings --")
    print(result.timer.report())

    s = result.stats
    print("\n-- assembly --")
    print(f"contigs:    {s.n_contigs}")
    print(f"total bases {s.total_bases:,}")
    print(f"N50:        {s.n50:,} bp")
    print(f"max contig: {s.max_contig:,} bp")

    # Validate the largest contig against the (normally unknown) truth.
    fwd = decode(genome.codes)
    rc = decode(reverse_complement(genome.codes))
    biggest = max(result.contigs, key=lambda c: c.size)
    window = decode(biggest[:60])
    located = window in fwd or window in rc
    print(f"\nlargest contig anchors to the true genome: {located}")


if __name__ == "__main__":
    main()
