#!/usr/bin/env python
"""Hybrid vs multilevel partitioning (the paper's Fig. 5 / Table II).

Builds one metagenome dataset, then partitions its assembly graph two
ways for k in {8, 16, 32}:

- multilevel: the naive baseline — full un-coarsening with
  Kernighan-Lin refinement at every level down to the overlap graph;
- hybrid: the knowledge-enriched variant — partition the much smaller
  hybrid graph (contiguous read clusters stay collapsed) and map the
  result onto the overlap graph.

Prints runtime and overlap-graph edge cut for both.

Run:  python examples/partitioning_comparison.py
"""

from repro import AssemblyConfig, FocusAssembler
from repro.partition.multilevel import partition_via_hybrid, partition_via_multilevel
from repro.partition.recursive import PartitionConfig
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def main() -> None:
    community = build_community(
        CommunityConfig(shared_length=3000, private_length=2500, repeat_copies=1), seed=11
    )
    reads = ReadSimulator(ReadSimConfig(read_length=100, coverage=8, seed=11)).simulate_community(
        community
    )
    print(f"dataset: {len(reads):,} reads from {len(community.genomes)} genomes")

    assembler = FocusAssembler(AssemblyConfig())
    prep = assembler.prepare(reads)
    g0, hyb = prep.g0, prep.hyb
    print(
        f"overlap graph: {g0.n_nodes:,} nodes / {g0.n_edges:,} edges; "
        f"hybrid graph: {hyb.hybrid.n_nodes:,} nodes "
        f"({g0.n_nodes / hyb.hybrid.n_nodes:.0f}x compression)"
    )

    print(f"\n{'k':>4} {'hybrid (s)':>11} {'multi (s)':>10} {'speed':>6} "
          f"{'cut hyb':>9} {'cut multi':>10}")
    cfg = PartitionConfig(seed=0)
    for k in (8, 16, 32):
        r_h = partition_via_hybrid(prep.mls, hyb, k, cfg)
        r_m = partition_via_multilevel(prep.mls, k, cfg)
        print(
            f"{k:>4} {r_h.wall_time:>11.3f} {r_m.wall_time:>10.3f} "
            f"{r_m.wall_time / r_h.wall_time:>5.1f}x "
            f"{r_h.cut_g0:>9.0f} {r_m.cut_g0:>10.0f}"
        )
    print("\n=> partitioning the hybrid graph is much faster and cuts fewer "
          "overlap-graph edges: biological knowledge pays.")


if __name__ == "__main__":
    main()
