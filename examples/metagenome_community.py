#!/usr/bin/env python
"""Community structure from graph partitions (the paper's Fig. 7).

Builds a synthetic gut microbiome over the ten genera the paper
analyses (three phyla, phylogenetically correlated genomes), sequences
it, assembles with Focus, partitions the hybrid graph 16 ways, and
shows that genera concentrate in partitions and that same-phylum
genera co-locate — the paper's "HPC as a knowledge-extraction tool"
claim.

Run:  python examples/metagenome_community.py
"""

from repro import AssemblyConfig, FocusAssembler
from repro.analysis.classify import KmerClassifier
from repro.analysis.community import (
    genus_partition_matrix,
    max_fraction_per_genus,
    phylum_colocation,
)
from repro.analysis.heatmap import render_heatmap
from repro.simulate.community import CommunityConfig, build_community
from repro.simulate.reads import ReadSimConfig, ReadSimulator
from repro.simulate.taxonomy import PHYLUM_OF

K_PARTITIONS = 16


def main() -> None:
    community = build_community(
        CommunityConfig(shared_length=4000, private_length=3000, repeat_copies=1),
        seed=7,
    )
    print("community genomes:")
    for genome, abundance in zip(community.genomes, community.abundances):
        meta = genome.meta
        print(f"  {meta['genus']:<18} {meta['phylum']:<15} {len(genome):>7,} bp  {abundance:.3f}")

    reads = ReadSimulator(ReadSimConfig(read_length=100, coverage=8, seed=7)).simulate_community(
        community
    )
    print(f"\nsequenced {len(reads):,} reads")

    assembler = FocusAssembler(AssemblyConfig(n_partitions=K_PARTITIONS))
    result = assembler.assemble(reads)
    print(f"assembly: {result.stats.n_contigs} contigs, N50 {result.stats.n50:,} bp")

    # Classify reads against the reference genomes (the BWA substitute).
    classifier = KmerClassifier(community.reference_database(), k=21)
    predicted = classifier.classify_readset(result.processed_reads)
    genera = sorted({g.meta["genus"] for g in community.genomes})
    matrix = genus_partition_matrix(
        predicted, result.read_partitions, genera, K_PARTITIONS
    )

    print("\n-- genus x partition heat map (Fig. 7) --")
    print(render_heatmap(matrix, genera))
    maxf = max_fraction_per_genus(matrix)
    same, cross = phylum_colocation(matrix, genera, PHYLUM_OF)
    print(f"\nmean top-partition share per genus: {maxf.mean():.3f}"
          f" (uniform would be {1 / K_PARTITIONS:.3f})")
    print(f"partition-profile correlation: same phylum {same:.3f}, cross phylum {cross:.3f}")
    print("=> related genera cluster into the same partitions")


if __name__ == "__main__":
    main()
