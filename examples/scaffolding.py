#!/usr/bin/env python
"""Scaffolding Focus contigs with paired-end reads.

Assembles single-end reads (which fragment at coverage gaps and
repeats), then uses a mate-pair library to order and orient the
contigs into scaffolds — the classic OLC post-processing stage.

Run:  python examples/scaffolding.py
"""

import numpy as np

from repro import AssemblyConfig, FocusAssembler
from repro.scaffold.scaffolder import ScaffoldConfig, Scaffolder
from repro.sequence.dna import decode
from repro.simulate.genome import Genome, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def main() -> None:
    genome = Genome("chromosome", random_genome(20_000, np.random.default_rng(55)))
    print(f"genome: {len(genome):,} bp")

    # Single-end assembly at moderate coverage -> several contigs.
    se_reads = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=9, seed=55)
    ).simulate_genome(genome)
    result = FocusAssembler(AssemblyConfig(n_partitions=4)).assemble(se_reads)
    print(f"single-end assembly: {result.stats.n_contigs} contigs, "
          f"N50 {result.stats.n50:,} bp")

    # A mate-pair library spans the gaps.
    pairs = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=6, seed=56, flat_error_rate=0.0)
    ).simulate_paired(genome, insert_size=1_500, insert_sd=80)
    print(f"mate-pair library: {len(pairs) // 2:,} pairs, ~1.5 kb inserts")

    # Standard practice: scaffold the substantial contigs only — tiny
    # fragments (leftover strand-mirror pieces) make every junction
    # ambiguous.
    contigs = [c for c in result.contigs if c.size >= 700]
    print(f"scaffolding the {len(contigs)} contigs >= 700 bp")

    scaffolds, links = Scaffolder(ScaffoldConfig(min_pairs=3)).scaffold(pairs, contigs)
    print(f"\nkept {len(links)} contig links:")
    for link in links:
        print(f"  contig{link.a}({link.a_orient}) -> contig{link.b}({link.b_orient})"
              f"  pairs={link.n_pairs}  gap~{link.gap:.0f} bp")

    print(f"\n{len(scaffolds)} scaffolds:")
    for i, sc in enumerate(scaffolds):
        chain = " -> ".join(f"contig{c}{o}" for c, o in sc.parts)
        seq = sc.sequence(contigs)
        print(f"  scaffold{i}: {chain}  ({seq.size:,} bp incl. gaps)")

    best = max(scaffolds, key=lambda s: s.n_contigs)
    print(f"\n=> longest scaffold chains {best.n_contigs} of "
          f"{len(contigs)} scaffolded contigs")


if __name__ == "__main__":
    main()
