#!/usr/bin/env python
"""Focus (distributed overlap graph) vs a de Bruijn assembler.

The paper positions the distributed overlap-graph model against the
dominant de Bruijn parallel assemblers (AbySS, Ray, SWAP).  This
example assembles the same simulated reads with both models and
compares contiguity — including on a repeat-rich genome where the two
models fragment differently.

Run:  python examples/assembler_shootout.py
"""

import numpy as np

from repro import AssemblyConfig, FocusAssembler
from repro.baselines.debruijn import DeBruijnAssembler, DeBruijnConfig
from repro.simulate.genome import Genome, insert_repeats, random_genome
from repro.simulate.reads import ReadSimConfig, ReadSimulator


def run_case(name: str, genome: Genome, seed: int) -> None:
    reads = ReadSimulator(
        ReadSimConfig(read_length=100, coverage=15, seed=seed)
    ).simulate_genome(genome)

    focus = FocusAssembler(AssemblyConfig(n_partitions=4)).assemble(reads)
    dbg_reads = focus.processed_reads  # same preprocessed reads (incl. RCs)
    _, dbg_stats = DeBruijnAssembler(
        DeBruijnConfig(k=31, min_count=3, min_contig_length=100)
    ).assemble(dbg_reads)

    print(f"\n-- {name} ({len(genome):,} bp, {len(reads):,} reads) --")
    print(f"{'':>14} {'contigs':>8} {'N50':>8} {'max':>8}")
    fs = focus.stats
    print(f"{'Focus':>14} {fs.n_contigs:>8} {fs.n50:>8,} {fs.max_contig:>8,}")
    print(
        f"{'de Bruijn':>14} {dbg_stats.n_contigs:>8} {dbg_stats.n50:>8,} "
        f"{dbg_stats.max_contig:>8,}"
    )


def main() -> None:
    rng = np.random.default_rng(3)
    plain = Genome("plain", random_genome(15_000, rng))
    run_case("repeat-free genome", plain, seed=3)

    rng = np.random.default_rng(4)
    base = random_genome(15_000, rng)
    repeaty = Genome("repeaty", insert_repeats(base, repeat_length=400, n_copies=4, rng=rng))
    run_case("repeat-rich genome (4 x 400 bp repeat family)", repeaty, seed=4)

    print(
        "\n=> long repeats (>> read length) fragment both models; the overlap "
        "graph keeps longer contigs where read-length context resolves what "
        "k-mer-length context cannot."
    )


if __name__ == "__main__":
    main()
